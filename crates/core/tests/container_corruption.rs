//! Corruption suite for the snapshot container (`skyline_core::container`),
//! extending the PR 4 `serialize.rs` proptest battery to the sectioned
//! format: **every** single-bit flip, truncation at every section boundary,
//! trailing junk, section-directory offset/length tampering (with the
//! checksums *recomputed*, so only structural validation can catch it), and
//! plain checksum mismatches must all be rejected with a typed
//! [`Error`] — never a panic, never an out-of-bounds access.

use proptest::prelude::*;

use skyline_core::container::{decode_index, encode_index, sections, Error};
use skyline_core::geometry::Dataset;
use skyline_core::index::SkylineIndex;
use skyline_core::maintained::Handle;

const HEADER_LEN: usize = 16;
const DIR_ENTRY_LEN: usize = 32;

/// A canonical full container: all eleven sections present (quadrant,
/// polyominoes, global, dynamic, handles) over a small mixed dataset.
fn canonical_bytes() -> Vec<u8> {
    let ds = Dataset::from_coords([(1, 9), (4, 4), (9, 1), (6, 7), (2, 2)])
        .expect("coordinates are tiny and valid");
    let index = SkylineIndex::builder()
        .with_global(true)
        .with_dynamic(true)
        .build(&ds);
    let handles: Vec<Handle> = (0..ds.len() as u64).map(Handle).collect();
    encode_index(&index, &handles)
}

/// The container's word-wise FNV-1a 64 (8-byte little-endian words,
/// zero-padded tail), reimplemented here so the tamper-then-fix cases can
/// forge valid checksums over corrupted content.
fn fnv64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn section_count(bytes: &[u8]) -> usize {
    u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize
}

fn dir_end(bytes: &[u8]) -> usize {
    HEADER_LEN + DIR_ENTRY_LEN * section_count(bytes)
}

/// Recomputes the header checksum after tampering with header/directory
/// bytes, so structural validation (not the checksum) must do the reject.
fn fix_header_checksum(bytes: &mut [u8]) {
    let end = dir_end(bytes);
    let sum = fnv64(&bytes[..end]);
    bytes[end..end + 8].copy_from_slice(&sum.to_le_bytes());
}

/// Recomputes directory entry `k`'s payload checksum from the bytes its
/// (possibly tampered) extent currently covers, then re-fixes the header
/// checksum that covers the directory.
fn fix_section_checksum(bytes: &mut [u8], k: usize) {
    let entry = HEADER_LEN + k * DIR_ENTRY_LEN;
    let offset = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
    let length = u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap()) as usize;
    let sum = fnv64(&bytes[offset..offset + length]);
    bytes[entry + 24..entry + 32].copy_from_slice(&sum.to_le_bytes());
    fix_header_checksum(bytes);
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = canonical_bytes();
    let mut rejected = 0usize;
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        for bit in 0..8 {
            bad[i] ^= 1 << bit;
            assert!(
                decode_index(&bad).is_err(),
                "flip of byte {i} bit {bit} was accepted"
            );
            rejected += 1;
            bad[i] ^= 1 << bit;
        }
    }
    // 100% of injected mutations rejected (the acceptance criterion).
    assert_eq!(rejected, bytes.len() * 8);
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let bytes = canonical_bytes();
    let dir = sections(&bytes).unwrap();
    assert_eq!(dir.len(), 11, "the canonical fixture has all sections");
    let payload_start = dir[0].offset as usize;
    let mut cuts = vec![0, 4, 8, 12, HEADER_LEN, payload_start - 8, payload_start];
    cuts.extend(dir.iter().map(|s| (s.offset + s.length) as usize));
    let full = cuts.pop().unwrap();
    assert_eq!(full, bytes.len(), "the last boundary is the full file");
    for cut in cuts {
        let got = decode_index(&bytes[..cut]);
        assert!(
            matches!(
                got,
                Err(Error::Truncated) | Err(Error::HeaderChecksumMismatch)
            ),
            "truncation at {cut} gave {got:?}"
        );
    }
}

#[test]
fn payload_corruption_names_the_corrupted_section() {
    let bytes = canonical_bytes();
    for s in sections(&bytes).unwrap() {
        let mut bad = bytes.clone();
        let mid = (s.offset + s.length / 2) as usize;
        bad[mid] ^= 0x40;
        assert_eq!(
            decode_index(&bad).unwrap_err(),
            Error::SectionChecksumMismatch(s.id),
            "corruption in section {} misattributed",
            s.name
        );
    }
}

#[test]
fn version_and_magic_are_checked_before_any_checksum() {
    let bytes = canonical_bytes();
    // A bumped major version is a version error, not corruption — even
    // though the header checksum no longer matches either.
    let mut bumped = bytes.clone();
    bumped[4] = 9;
    assert_eq!(decode_index(&bumped).unwrap_err(), Error::BadVersion(9));
    // ...and stays a version error when the checksum is forged to match.
    fix_header_checksum(&mut bumped);
    assert_eq!(decode_index(&bumped).unwrap_err(), Error::BadVersion(9));
    let mut magic = bytes;
    magic[0] = b'Z';
    assert_eq!(decode_index(&magic).unwrap_err(), Error::BadMagic);
}

#[test]
fn directory_offset_overlap_is_rejected_with_fixed_checksums() {
    let bytes = canonical_bytes();
    // Pull section 1's payload 4 bytes back into section 0's extent and
    // forge both checksum layers: only the contiguity validation is left
    // to refuse the overlap.
    let mut bad = bytes;
    let entry = HEADER_LEN + DIR_ENTRY_LEN;
    let offset = u64::from_le_bytes(bad[entry + 8..entry + 16].try_into().unwrap());
    bad[entry + 8..entry + 16].copy_from_slice(&(offset - 4).to_le_bytes());
    fix_section_checksum(&mut bad, 1);
    assert!(matches!(decode_index(&bad).unwrap_err(), Error::Invalid(_)));
}

#[test]
fn directory_length_tampering_is_rejected_with_fixed_checksums() {
    let bytes = canonical_bytes();
    let n = section_count(&bytes);
    // Growing the last section past the buffer: Truncated.
    let mut grown = bytes.clone();
    let entry = HEADER_LEN + (n - 1) * DIR_ENTRY_LEN;
    let length = u64::from_le_bytes(grown[entry + 16..entry + 24].try_into().unwrap());
    grown[entry + 16..entry + 24].copy_from_slice(&(length + 1).to_le_bytes());
    fix_header_checksum(&mut grown);
    assert_eq!(decode_index(&grown).unwrap_err(), Error::Truncated);
    // Shrinking it: the file now has unclaimed trailing bytes.
    let mut shrunk = bytes.clone();
    shrunk[entry + 16..entry + 24].copy_from_slice(&(length - 1).to_le_bytes());
    fix_section_checksum(&mut shrunk, n - 1);
    assert_eq!(decode_index(&shrunk).unwrap_err(), Error::TrailingBytes(1));
    // Shrinking an *interior* section breaks contiguity.
    let mut interior = bytes;
    let entry0 = HEADER_LEN;
    let len0 = u64::from_le_bytes(interior[entry0 + 16..entry0 + 24].try_into().unwrap());
    interior[entry0 + 16..entry0 + 24].copy_from_slice(&(len0 - 2).to_le_bytes());
    fix_section_checksum(&mut interior, 0);
    assert!(matches!(
        decode_index(&interior).unwrap_err(),
        Error::Invalid(_)
    ));
}

#[test]
fn reserved_words_and_id_order_are_enforced() {
    let bytes = canonical_bytes();
    let mut reserved = bytes.clone();
    reserved[HEADER_LEN + 4] = 1;
    fix_header_checksum(&mut reserved);
    assert!(matches!(
        decode_index(&reserved).unwrap_err(),
        Error::Invalid(_)
    ));
    // Swapping two directory ids (keeping extents) breaks the ordering.
    let mut swapped = bytes;
    let (a, b) = (HEADER_LEN, HEADER_LEN + DIR_ENTRY_LEN);
    let id_a: [u8; 4] = swapped[a..a + 4].try_into().unwrap();
    let id_b: [u8; 4] = swapped[b..b + 4].try_into().unwrap();
    swapped[a..a + 4].copy_from_slice(&id_b);
    swapped[b..b + 4].copy_from_slice(&id_a);
    fix_header_checksum(&mut swapped);
    assert!(matches!(
        decode_index(&swapped).unwrap_err(),
        Error::Invalid(_)
    ));
}

#[test]
fn flag_tampering_with_fixed_checksums_is_rejected() {
    let bytes = canonical_bytes();
    // An unknown flag bit: rejected even though both checksums pass.
    let mut unknown = bytes.clone();
    unknown[9] |= 0x80;
    fix_header_checksum(&mut unknown);
    assert_eq!(
        decode_index(&unknown).unwrap_err(),
        Error::Invalid("unknown flag bits set")
    );
    // Clearing the handles flag while the section remains: list mismatch.
    let mut cleared = bytes;
    cleared[8] &= !0x04;
    fix_header_checksum(&mut cleared);
    assert_eq!(
        decode_index(&cleared).unwrap_err(),
        Error::Invalid("section list does not match the header flags")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any proper-prefix truncation (not just section boundaries) fails
    /// with a typed error.
    #[test]
    fn random_truncations_are_rejected(cut in any::<prop::sample::Index>()) {
        let bytes = canonical_bytes();
        let cut = cut.index(bytes.len());
        prop_assert!(decode_index(&bytes[..cut]).is_err());
    }

    /// Trailing junk of any size and content is reported exactly.
    #[test]
    fn trailing_junk_is_rejected(junk in proptest::collection::vec(any::<u8>(), 1..9)) {
        let mut bytes = canonical_bytes();
        let n = junk.len();
        bytes.extend_from_slice(&junk);
        prop_assert_eq!(decode_index(&bytes).unwrap_err(), Error::TrailingBytes(n));
    }

    /// Adversarial payloads: a random byte change *with forged checksums*
    /// must either decode (the mutation landed on a value that stays
    /// semantically valid) or fail with a typed error — never panic and
    /// never read out of bounds.
    #[test]
    fn forged_checksums_never_panic(
        pos in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = canonical_bytes();
        let dir = sections(&bytes).unwrap();
        let payload_start = dir[0].offset as usize;
        let at = payload_start + pos.index(bytes.len() - payload_start);
        bytes[at] ^= mask;
        let k = dir
            .iter()
            .position(|s| (at as u64) < s.offset + s.length)
            .expect("every payload byte belongs to a section");
        fix_section_checksum(&mut bytes, k);
        let _ = decode_index(&bytes); // must return, Ok or Err
    }

    /// Random multi-bit corruption anywhere in the file is rejected.
    #[test]
    fn random_byte_corruption_is_rejected(
        pos in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = canonical_bytes();
        let at = pos.index(bytes.len());
        bytes[at] ^= mask;
        prop_assert!(decode_index(&bytes).is_err());
    }
}
