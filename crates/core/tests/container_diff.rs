//! Differential suite for the snapshot container: save → load → answer must
//! be *bit-identical* to the freshly built index — same quadrant, global,
//! and dynamic diagrams, same polyomino decomposition, same workload
//! checksum over a deterministic probe grid — and the container bytes
//! themselves must be identical across `SKYLINE_THREADS` settings (CI runs
//! this file under the {0, 1, 4} matrix; the thread-sweep test below also
//! pins the three configurations explicitly in-process via
//! [`ParallelConfig::with_threads`]). Degenerate datasets — duplicate
//! coordinates, collinear points, `n = 1` — are covered both directly and
//! via proptest.

use proptest::prelude::*;

use skyline_core::container::{decode_index, encode_index};
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::index::SkylineIndex;
use skyline_core::maintained::Handle;
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// Folds every query family's answers at a deterministic lattice of probe
/// points (including off-domain and on-grid-line positions) into one
/// checksum. Two indexes answering any probe differently — in content *or*
/// order — produce different checksums.
fn workload_checksum(index: &SkylineIndex) -> u64 {
    let mut h = FNV_OFFSET;
    for gx in 0..24i64 {
        for gy in 0..24i64 {
            let q = Point::new(gx * 23 - 10, gy * 23 - 10);
            for id in index.quadrant(q) {
                mix(&mut h, 1 + id.0 as u64);
            }
            mix(&mut h, u64::MAX);
            for id in index.global(q) {
                mix(&mut h, 1 + id.0 as u64);
            }
            mix(&mut h, u64::MAX - 1);
            for id in index.dynamic(q) {
                mix(&mut h, 1 + id.0 as u64);
            }
            mix(&mut h, u64::MAX - 2);
            let zone = index.safe_zone(q);
            mix(&mut h, zone.result.0 as u64);
            for &(i, j) in zone.cells {
                mix(&mut h, ((i as u64) << 32) | j as u64);
            }
        }
    }
    h
}

/// Non-contiguous handle table, so adoption (not regeneration) is tested.
fn handles_for(ds: &Dataset) -> Vec<Handle> {
    (0..ds.len() as u64).map(|i| Handle(i * 3 + 7)).collect()
}

/// The full differential: build fresh → save → load, then assert the loaded
/// index is indistinguishable from the fresh one. Returns the container
/// bytes so callers can compare encodings across configurations.
fn assert_save_load_is_identity(index: &SkylineIndex) -> Vec<u8> {
    let handles = handles_for(index.dataset());
    let bytes = encode_index(index, &handles);
    let loaded = decode_index(&bytes).expect("fresh container bytes must decode");

    assert_eq!(
        loaded.handles, handles,
        "handle table must round-trip verbatim"
    );
    assert_eq!(
        encode_index(&loaded.index, &loaded.handles),
        bytes,
        "save → load → save must be bit-identical"
    );

    let (fresh, cold) = (index, &loaded.index);
    assert_eq!(
        fresh.quadrant_diagram().grid().x_lines(),
        cold.quadrant_diagram().grid().x_lines()
    );
    assert_eq!(
        fresh.quadrant_diagram().grid().y_lines(),
        cold.quadrant_diagram().grid().y_lines()
    );
    assert!(cold
        .quadrant_diagram()
        .same_results(fresh.quadrant_diagram()));
    assert_eq!(
        cold.polyominoes().polyomino_results(),
        fresh.polyominoes().polyomino_results()
    );
    assert_eq!(
        cold.polyominoes().polyomino_ends(),
        fresh.polyominoes().polyomino_ends()
    );
    assert_eq!(
        cold.polyominoes().cells_flat(),
        fresh.polyominoes().cells_flat()
    );
    match (fresh.global_diagram(), cold.global_diagram()) {
        (None, None) => {}
        (Some(a), Some(b)) => assert!(b.same_results(a), "global diagrams diverged"),
        _ => panic!("global diagram presence changed across save/load"),
    }
    match (fresh.dynamic_diagram(), cold.dynamic_diagram()) {
        (None, None) => {}
        (Some(a), Some(b)) => assert!(b.same_results(a), "dynamic diagrams diverged"),
        _ => panic!("dynamic diagram presence changed across save/load"),
    }
    assert_eq!(
        workload_checksum(fresh),
        workload_checksum(cold),
        "workload checksums diverged between fresh build and container load"
    );
    bytes
}

/// A mixed dataset: skyline staircase, interior dominated points, and
/// coordinate ties on both axes.
fn mixed_dataset() -> Dataset {
    Dataset::from_coords([
        (1, 90),
        (10, 70),
        (25, 40),
        (40, 25),
        (70, 10),
        (90, 1),
        (50, 50),
        (50, 70),
        (70, 50),
        (10, 40),
        (25, 90),
    ])
    .expect("mixed dataset coordinates are valid")
}

#[test]
fn threads_zero_one_four_produce_one_identical_container() {
    let ds = mixed_dataset();
    let encodings: Vec<Vec<u8>> = [0usize, 1, 4]
        .into_iter()
        .map(|threads| {
            let index = SkylineIndex::builder()
                .with_global(true)
                .with_dynamic(true)
                .build_with(&ds, &ParallelConfig::with_threads(threads));
            assert_save_load_is_identity(&index)
        })
        .collect();
    assert_eq!(
        encodings[0], encodings[1],
        "threads=0 vs threads=1 encodings differ"
    );
    assert_eq!(
        encodings[0], encodings[2],
        "threads=0 vs threads=4 encodings differ"
    );
}

#[test]
fn degenerate_datasets_survive_save_load() {
    let cases: Vec<Vec<(i64, i64)>> = vec![
        vec![(5, 5)],                         // n = 1
        vec![(5, 1), (5, 3), (5, 7)],         // duplicate x coordinate
        vec![(1, 4), (3, 4), (9, 4)],         // duplicate y coordinate
        vec![(1, 1), (2, 2), (3, 3), (4, 4)], // collinear diagonal
        vec![(0, 0), (0, 9), (9, 0), (9, 9)], // corners incl. origin
    ];
    for coords in cases {
        let ds = Dataset::from_coords(coords.clone())
            .expect("degenerate coordinates are still valid datasets");
        let index = SkylineIndex::builder()
            .with_global(true)
            .with_dynamic(true)
            .build(&ds);
        assert_save_load_is_identity(&index);
    }
}

#[test]
fn quadrant_only_and_global_only_flag_subsets_round_trip() {
    let ds = mixed_dataset();
    let quadrant_only = SkylineIndex::new(&ds);
    assert_save_load_is_identity(&quadrant_only);
    let with_global = SkylineIndex::builder().with_global(true).build(&ds);
    assert_save_load_is_identity(&with_global);
}

/// Distinct-pair dataset from raw proptest coordinates (as in
/// `serialize_prop.rs`).
fn dataset_from(pairs: Vec<(i64, i64)>) -> Option<Dataset> {
    let mut seen = std::collections::HashSet::new();
    let coords: Vec<(i64, i64)> = pairs.into_iter().filter(|p| seen.insert(*p)).collect();
    if coords.is_empty() {
        None
    } else {
        Dataset::from_coords(coords).ok()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random datasets and engines: the loaded index answers every probe
    /// exactly like the fresh one, and the whole-workload checksum matches.
    #[test]
    fn random_datasets_round_trip(
        pairs in prop::collection::vec((0i64..500, 0i64..500), 1..48),
        engine_pick in 0usize..8,
        probes in prop::collection::vec((-10i64..520, -10i64..520), 8),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let engine = QuadrantEngine::ALL[engine_pick % QuadrantEngine::ALL.len()];
        let index = SkylineIndex::builder()
            .engine(engine)
            .with_global(true)
            .build(&ds);
        let bytes = assert_save_load_is_identity(&index);
        let loaded = decode_index(&bytes).expect("bytes just round-tripped");
        for (x, y) in probes {
            let q = Point::new(x, y);
            prop_assert_eq!(loaded.index.quadrant(q), index.quadrant(q), "quadrant at {}", q);
            prop_assert_eq!(loaded.index.global(q), index.global(q), "global at {}", q);
        }
    }

    /// Small random datasets with the dynamic diagram and both dynamic
    /// engines included.
    #[test]
    fn random_dynamic_datasets_round_trip(
        pairs in prop::collection::vec((0i64..80, 0i64..80), 1..9),
        scanning in 0usize..2,
        probes in prop::collection::vec((-4i64..90, -4i64..90), 6),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let engine = if scanning == 0 { DynamicEngine::Scanning } else { DynamicEngine::Subset };
        let index = SkylineIndex::builder()
            .dynamic_engine(engine)
            .with_global(true)
            .with_dynamic(true)
            .build(&ds);
        let bytes = assert_save_load_is_identity(&index);
        let loaded = decode_index(&bytes).expect("bytes just round-tripped");
        for (x, y) in probes {
            let q = Point::new(x, y);
            prop_assert_eq!(loaded.index.dynamic(q), index.dynamic(q), "dynamic at {}", q);
        }
    }
}
