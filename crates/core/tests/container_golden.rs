//! Golden-fixture test for the snapshot container: a small canonical
//! `.skd` file is committed under `tests/fixtures/` and must load
//! byte-exactly forever — any change to the on-disk encoding without a
//! version bump fails here (and CI additionally fails if the fixture file
//! itself is regenerated in a commit that does not bump the version).
//!
//! To regenerate after an *intentional* format change (major bump):
//!
//! ```text
//! SKYLINE_REGEN_FIXTURE=1 cargo test -p skyline-core --test container_golden -- --ignored
//! ```

use std::path::PathBuf;

use skyline_core::container::{
    decode_index, encode_index, sections, Error, MAJOR_VERSION, MINOR_VERSION,
};
use skyline_core::geometry::Dataset;
use skyline_core::index::SkylineIndex;
use skyline_core::maintained::Handle;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hotel_v1.skd")
}

/// The paper's running example (hotels: price vs distance), full flags.
/// Everything here is deterministic, so re-encoding must reproduce the
/// committed fixture bit for bit.
fn golden_bytes() -> Vec<u8> {
    let ds = Dataset::from_coords([(2, 9), (3, 4), (5, 6), (6, 2), (8, 5), (9, 1)])
        .expect("hotel coordinates are valid");
    let index = SkylineIndex::builder()
        .with_global(true)
        .with_dynamic(true)
        .build(&ds);
    let handles: Vec<Handle> = (0..ds.len() as u64).map(|i| Handle(100 + i)).collect();
    encode_index(&index, &handles)
}

#[test]
fn fixture_is_byte_exact() {
    let committed = std::fs::read(fixture_path())
        .expect("tests/fixtures/hotel_v1.skd must be committed alongside this test");
    assert_eq!(
        golden_bytes(),
        committed,
        "the container encoding changed: either revert the format change or \
         bump MAJOR_VERSION and regenerate the fixture (see module docs)"
    );
}

#[test]
fn fixture_loads_and_answers() {
    let committed = std::fs::read(fixture_path()).expect("fixture file readable");
    assert_eq!(sections(&committed).unwrap().len(), 11);
    let loaded = decode_index(&committed).expect("committed fixture must decode");
    assert_eq!(loaded.index.dataset().len(), 6);
    assert_eq!(loaded.handles.first(), Some(&Handle(100)));
    assert!(loaded.index.global_diagram().is_some());
    assert!(loaded.index.dynamic_diagram().is_some());
}

#[test]
fn fixture_records_the_current_version() {
    let committed = std::fs::read(fixture_path()).expect("fixture file readable");
    let major = u16::from_le_bytes(committed[4..6].try_into().unwrap());
    let minor = u16::from_le_bytes(committed[6..8].try_into().unwrap());
    assert_eq!((major, minor), (MAJOR_VERSION, MINOR_VERSION));
}

/// The forward-compat contract from the header rustdoc: a reader presented
/// with a *newer major* version reports a version error (not corruption),
/// because the major is validated before any checksum.
#[test]
fn bumped_major_version_is_a_version_error() {
    let mut committed = std::fs::read(fixture_path()).expect("fixture file readable");
    let next = MAJOR_VERSION + 1;
    committed[4..6].copy_from_slice(&next.to_le_bytes());
    assert_eq!(
        decode_index(&committed).unwrap_err(),
        Error::BadVersion(next)
    );
}

/// Regenerates the committed fixture. Ignored by default; only meaningful
/// together with an intentional `MAJOR_VERSION` bump.
#[test]
#[ignore = "writes tests/fixtures/hotel_v1.skd; run only on an intentional format change"]
fn regenerate_fixture() {
    if std::env::var_os("SKYLINE_REGEN_FIXTURE").is_none() {
        eprintln!("set SKYLINE_REGEN_FIXTURE=1 to actually rewrite the fixture");
        return;
    }
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures directory creatable");
    std::fs::write(&path, golden_bytes()).expect("fixture file writable");
}
