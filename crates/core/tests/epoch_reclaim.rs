//! Epoch-chain memory reclamation, checked under the normal test runner
//! *and* under Miri in CI (`cargo +nightly miri test -p skyline-core
//! --test epoch_reclaim`): nodes behind the slowest cursor are freed — no
//! leak, no double-free, no use-after-free — across publisher/reader drop
//! orders. Sizes are kept small so Miri's interpreter finishes within the
//! CI time budget; the `skyline_sched`-gated twin of this coverage lives
//! in `sched_epoch.rs`, where the interleavings themselves are enumerated.

use skyline_core::epoch::EpochPublisher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Counts drops of the values carried by the chain, so every test can
/// assert exactly which epochs have been reclaimed.
struct Probe {
    id: u64,
    drops: Arc<AtomicUsize>,
}

impl Probe {
    fn new(id: u64, drops: &Arc<AtomicUsize>) -> Self {
        Probe {
            id,
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn cursor_advance_frees_exactly_the_passed_epochs() {
    let drops = Arc::new(AtomicUsize::new(0));
    let mut publisher = EpochPublisher::new(Probe::new(0, &drops));
    let mut reader = publisher.reader();
    for i in 1..=4 {
        publisher.publish(Probe::new(i, &drops));
    }
    assert_eq!(drops.load(Ordering::SeqCst), 0, "lagging cursor pins all");

    let value = reader.refresh();
    assert_eq!(value.id, 4);
    // The cursor walked past epochs 0..=3; the publisher only holds the
    // tail, so exactly those four probes must be gone.
    assert_eq!(drops.load(Ordering::SeqCst), 4);

    drop(publisher);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        4,
        "reader still pins the tail"
    );
    drop(value);
    drop(reader);
    assert_eq!(drops.load(Ordering::SeqCst), 5, "nothing may leak");
}

#[test]
fn publisher_dropped_first_chain_survives_for_readers() {
    let drops = Arc::new(AtomicUsize::new(0));
    let mut publisher = EpochPublisher::new(Probe::new(0, &drops));
    let mut reader = publisher.reader();
    publisher.publish(Probe::new(1, &drops));
    publisher.publish(Probe::new(2, &drops));
    drop(publisher);

    // The whole chain is still reachable from the lagging cursor.
    assert_eq!(drops.load(Ordering::SeqCst), 0);
    let value = reader.refresh();
    assert_eq!(value.id, 2);
    assert_eq!(reader.epoch(), 2);
    assert_eq!(drops.load(Ordering::SeqCst), 2, "passed epochs are freed");
    drop(value);
    drop(reader);
    assert_eq!(drops.load(Ordering::SeqCst), 3);
}

#[test]
fn readers_dropped_first_publisher_reclaims_history() {
    let drops = Arc::new(AtomicUsize::new(0));
    let mut publisher = EpochPublisher::new(Probe::new(0, &drops));
    let r1 = publisher.reader();
    let r2 = r1.clone();
    publisher.publish(Probe::new(1, &drops));
    drop(r1);
    assert_eq!(drops.load(Ordering::SeqCst), 0, "r2 still pins epoch 0");
    drop(r2);
    // No cursor behind the tail any more: history reclaims immediately.
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    drop(publisher);
    assert_eq!(drops.load(Ordering::SeqCst), 2);
}

#[test]
fn interleaved_refresh_and_drop_orders() {
    // Every (publish, refresh, drop) order of a two-reader chain; the
    // union of assertions is the no-leak/no-double-free contract. Sizes
    // stay tiny so the whole matrix runs under Miri.
    for drop_publisher_first in [false, true] {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut publisher = EpochPublisher::new(Probe::new(0, &drops));
        let mut fast = publisher.reader();
        let slow = publisher.reader();
        publisher.publish(Probe::new(1, &drops));
        let pinned = fast.refresh();
        assert_eq!(pinned.id, 1);
        publisher.publish(Probe::new(2, &drops));

        if drop_publisher_first {
            drop(publisher);
            assert_eq!(drops.load(Ordering::SeqCst), 0, "slow cursor pins all");
            drop(slow);
        } else {
            drop(slow);
            // The slow cursor was the only holder of epoch 0; `fast`
            // (at epoch 1) pins everything from there on.
            assert_eq!(drops.load(Ordering::SeqCst), 1, "epoch 0 reclaims at once");
            drop(publisher);
        }
        // Only `fast` (at epoch 1) and its pinned value remain: epoch 0
        // must be reclaimed, epochs 1 and 2 must not.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Refresh moves the cursor to the tail (epoch 2), freeing epoch
        // 1's node but not its value, which `pinned` still holds.
        assert_eq!(fast.refresh().id, 2);
        assert_eq!(fast.epoch(), 2);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "pinned value stays alive");
        drop(pinned);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        drop(fast);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "nothing leaks");
    }
}
