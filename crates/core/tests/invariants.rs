//! Invariants-driven property suite: every engine's output must pass the
//! full [`skyline_core::invariants`] battery — structural tiling, exhaustive
//! brute-force semantic recompute, the Definition 2 union cross-check for
//! global diagrams, and the polyomino partition checks — on randomly
//! generated datasets (≥100 per query semantics) spanning general position
//! through heavy coordinate ties, plus the paper's hotel running example.
//!
//! The engines also self-check behind `debug_assert!` during these builds;
//! this suite exists so the invariants hold by *test contract*, not only by
//! debug-mode side effect, and so violations surface with a reproducible
//! proptest case seed.

use proptest::prelude::*;
use skyline_core::diagram::merge::{merge, merge_subcells};
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point, PointId};
use skyline_core::global;
use skyline_core::invariants::{self, CellSemantics, FULL_SAMPLE};
use skyline_core::quadrant::QuadrantEngine;

/// The paper's Table 1 hotel dataset (p1..p11, 1-indexed in the paper).
fn hotel() -> Dataset {
    Dataset::from_coords([
        (1, 92),
        (3, 96),
        (12, 86),
        (5, 94),
        (15, 85),
        (8, 78),
        (16, 83),
        (13, 83),
        (6, 93),
        (21, 82),
        (11, 9),
    ])
    .expect("the hotel running example is a valid dataset")
}

/// Coordinates drawn from a deliberately small window around the origin so
/// ties, duplicate points, and negative coordinates are all frequent.
fn dataset_strategy(max_n: usize, lo: i64, hi: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((lo..hi, lo..hi), 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quadrant_diagrams_satisfy_all_invariants(coords in dataset_strategy(10, -6, 18)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        for engine in QuadrantEngine::ALL {
            let d = engine.build(&ds);
            if let Err(v) =
                invariants::validate_cell_diagram(&ds, &d, CellSemantics::Quadrant, FULL_SAMPLE)
            {
                return Err(TestCaseError::fail(format!("{}: {v}", engine.name())));
            }
        }
        let d = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        if let Err(v) = invariants::validate_merged_cells(&d, &merged) {
            return Err(TestCaseError::fail(format!("merged: {v}")));
        }
        prop_assert_eq!(invariants::total_area(&merged), d.grid().cell_count());
    }

    #[test]
    fn global_diagrams_satisfy_all_invariants(coords in dataset_strategy(10, -6, 18)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        let d = global::build(&ds, QuadrantEngine::Sweeping);
        if let Err(v) =
            invariants::validate_cell_diagram(&ds, &d, CellSemantics::Global, FULL_SAMPLE)
        {
            return Err(TestCaseError::fail(v.to_string()));
        }
        let merged = merge(&d);
        if let Err(v) = invariants::validate_merged_cells(&d, &merged) {
            return Err(TestCaseError::fail(format!("merged: {v}")));
        }
    }

    #[test]
    fn dynamic_diagrams_satisfy_all_invariants(coords in dataset_strategy(6, -4, 12)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        let d = DynamicEngine::Scanning.build(&ds);
        if let Err(v) = invariants::validate_subcell_diagram(&ds, &d, FULL_SAMPLE) {
            return Err(TestCaseError::fail(v.to_string()));
        }
        let merged = merge_subcells(&d);
        if let Err(v) = invariants::validate_merged_subcells(&d, &merged) {
            return Err(TestCaseError::fail(format!("merged: {v}")));
        }
        prop_assert_eq!(invariants::total_area(&merged), d.grid().subcell_count());
    }
}

#[test]
fn hotel_running_example_satisfies_all_invariants() {
    let ds = hotel();

    for engine in QuadrantEngine::ALL {
        let d = engine.build(&ds);
        invariants::validate_cell_diagram(&ds, &d, CellSemantics::Quadrant, FULL_SAMPLE)
            .unwrap_or_else(|v| panic!("{}: {v}", engine.name()));
        // Paper running example: the quadrant skyline of q = (10, 80) is
        // {p3, p8, p10} (0-indexed ids 2, 7, 9).
        assert_eq!(
            d.query(Point::new(10, 80)),
            &[PointId(2), PointId(7), PointId(9)],
            "{}",
            engine.name()
        );
        let merged = merge(&d);
        invariants::validate_merged_cells(&d, &merged).unwrap_or_else(|v| panic!("{v}"));
    }

    let g = global::build(&ds, QuadrantEngine::Sweeping);
    invariants::validate_cell_diagram(&ds, &g, CellSemantics::Global, FULL_SAMPLE)
        .unwrap_or_else(|v| panic!("global: {v}"));

    for engine in DynamicEngine::ALL {
        let d = engine.build(&ds);
        invariants::validate_subcell_diagram(&ds, &d, FULL_SAMPLE)
            .unwrap_or_else(|v| panic!("{}: {v}", engine.name()));
    }
}
