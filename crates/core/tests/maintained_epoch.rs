//! Mid-epoch behavior of [`MaintainedIndex`] beyond the in-module unit
//! tests: reusing coordinates across insert→remove→insert cycles, removing
//! a pending (never-built) insertion, and a property test comparing every
//! mid-epoch answer against a from-scratch recompute under random
//! interleavings that deliberately *avoid* crossing the rebuild threshold
//! (so the exercised code path is the lazy merge, not the rebuild).

use proptest::prelude::*;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::maintained::{Handle, MaintainedIndex};
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query::quadrant_skyline_naive;

/// From-scratch oracle over an externally tracked mirror of the live set.
fn oracle(mirror: &[(Handle, Point)], q: Point) -> Vec<Handle> {
    if mirror.is_empty() {
        return Vec::new();
    }
    let ds = Dataset::from_coords(mirror.iter().map(|&(_, p)| (p.x, p.y)))
        .expect("mirror points are valid coordinates");
    let mut out: Vec<Handle> = quadrant_skyline_naive(&ds, q)
        .into_iter()
        .map(|id| mirror[id.index()].0)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn reinserting_a_removed_coordinate_yields_a_fresh_handle() {
    let mut index = MaintainedIndex::new(QuadrantEngine::Sweeping);
    // Both dominated by (3, 3), so the cycled point is the sole answer.
    let others = [Point::new(6, 6), Point::new(5, 7)];
    for p in others {
        index.insert(p);
    }
    let p = Point::new(3, 3);
    let q = Point::new(0, 0);

    // insert → build → remove → reinsert the *same* coordinate, all within
    // one post-build epoch: the new handle must answer, the old must not.
    let first = index.insert(p);
    index.rebuild();
    assert_eq!(index.query(q), vec![first]);
    assert!(index.remove(first));
    let second = index.insert(p);
    assert_ne!(first, second, "handles are never reused");
    assert_eq!(index.get(first), None);
    assert_eq!(index.get(second), Some(p));
    assert_eq!(
        index.query(q),
        vec![second],
        "the reinserted point answers under its new handle"
    );

    // A second full cycle on the same coordinate behaves identically.
    assert!(index.remove(second));
    let third = index.insert(p);
    assert!(third > second);
    assert_eq!(index.query(q), vec![third]);
}

#[test]
fn removing_a_pending_insertion_cancels_it_without_a_rebuild() {
    let mut index = MaintainedIndex::new(QuadrantEngine::Scanning);
    index.insert(Point::new(8, 8));
    index.rebuild();
    assert_eq!(index.pending_updates(), 0);

    // The pending insertion would dominate; cancelling it must restore the
    // built answer exactly, and must not force the removal-rebuild path
    // (a cancelled pending insert never reached the built structure).
    let pending = index.insert(Point::new(2, 2));
    assert!(index.remove(pending));
    let before_query_epoch = index.pending_updates();
    let q = Point::new(0, 0);
    let answer = index.query(q);
    assert_eq!(answer.len(), 1, "only the built point remains");
    assert_eq!(index.get(pending), None);
    // insert+cancel left dirt but no *removal* of built state; the lazy
    // path stays available (dirt only forces a rebuild past the threshold).
    assert!(before_query_epoch <= 2);
}

#[test]
fn insert_remove_insert_interleaving_with_queries_between_each_step() {
    let mut index = MaintainedIndex::new(QuadrantEngine::Baseline);
    index.rebuild_threshold = usize::MAX; // never rebuild behind our back
    let mut mirror: Vec<(Handle, Point)> = Vec::new();
    let base = [(10, 40), (20, 30), (30, 20), (40, 10), (25, 25)];
    for (x, y) in base {
        let p = Point::new(x, y);
        mirror.push((index.insert(p), p));
    }
    index.rebuild();

    let probes = [Point::new(0, 0), Point::new(15, 15), Point::new(22, 9)];
    let steps: [(i64, i64); 3] = [(12, 12), (18, 8), (5, 35)];
    for (x, y) in steps {
        let p = Point::new(x, y);
        // Insert, query, remove, query, re-insert, query: the answer must
        // track the mirror at every intermediate state.
        let h = index.insert(p);
        mirror.push((h, p));
        for &q in &probes {
            assert_eq!(index.query(q), oracle(&mirror, q), "after insert {p}");
        }
        assert!(index.remove(h));
        mirror.retain(|&(mh, _)| mh != h);
        for &q in &probes {
            assert_eq!(index.query(q), oracle(&mirror, q), "after remove {p}");
        }
        let h2 = index.insert(p);
        mirror.push((h2, p));
        for &q in &probes {
            assert_eq!(index.query(q), oracle(&mirror, q), "after re-insert {p}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of inserts, removes, and queries, with the
    /// rebuild threshold pushed out of reach: every answer comes from the
    /// lazy mid-epoch merge and must equal the from-scratch oracle. A
    /// second index that rebuilds after *every* update must agree too.
    #[test]
    fn mid_epoch_answers_equal_from_scratch_rebuild(
        ops in prop::collection::vec((0u8..4, 0i64..60, 0i64..60, any::<prop::sample::Index>()), 1..60),
        engine_pick in 0usize..8,
    ) {
        let engine = QuadrantEngine::ALL[engine_pick % QuadrantEngine::ALL.len()];
        let mut lazy = MaintainedIndex::new(engine);
        lazy.rebuild_threshold = usize::MAX;
        let mut eager = MaintainedIndex::new(engine);
        let mut mirror: Vec<(Handle, Point)> = Vec::new();
        let mut eager_handles: Vec<Handle> = Vec::new();

        for (kind, x, y, pick) in ops {
            match kind {
                // Insert (twice as likely as remove).
                0 | 1 => {
                    let p = Point::new(x, y);
                    mirror.push((lazy.insert(p), p));
                    eager_handles.push(eager.insert(p));
                    eager.rebuild();
                }
                2 if !mirror.is_empty() => {
                    let i = pick.index(mirror.len());
                    let (h, _) = mirror.remove(i);
                    prop_assert!(lazy.remove(h));
                    prop_assert!(eager.remove(eager_handles.remove(i)));
                    eager.rebuild();
                }
                _ => {
                    let q = Point::new(x - 5, y - 5);
                    let expected = oracle(&mirror, q);
                    prop_assert_eq!(lazy.query(q), expected.clone(), "lazy at {}", q);
                    // The eager index mints different handle values; compare
                    // by *position* via the paired handle vectors.
                    let eager_mapped: Vec<Handle> = {
                        let positions: std::collections::HashMap<Handle, usize> = eager_handles
                            .iter()
                            .enumerate()
                            .map(|(i, &h)| (h, i))
                            .collect();
                        let mut v: Vec<Handle> = eager
                            .query(q)
                            .into_iter()
                            .map(|h| mirror[positions[&h]].0)
                            .collect();
                        v.sort_unstable();
                        v
                    };
                    prop_assert_eq!(eager_mapped, expected, "eager at {}", q);
                }
            }
        }
        prop_assert_eq!(lazy.len(), mirror.len());
        prop_assert_eq!(eager.len(), mirror.len());
    }
}
