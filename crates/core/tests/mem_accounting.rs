//! Integration tests for the memory observatory (`telemetry::mem`).
//!
//! Three guarantees are pinned here, over the real construction engines:
//!
//! * **Arena accounting is honest** — for random datasets, the explicit
//!   `heap_bytes()` estimate of a built diagram agrees with the counting
//!   allocator's live-bytes delta across the build, within a generous
//!   slack (the allocator also sees registry nodes, map-capacity rounding,
//!   and harness noise; the estimate must still account for the bulk).
//! * **Attribution follows the thread** — a parallel build charges its
//!   worker-thread allocations to the `pool_worker` phase, not to the
//!   `pool_stitch` phase of the sequential merge, and not to the build
//!   phase active on the calling thread.
//! * **Observation does not perturb** — diagrams built with the counting
//!   allocator active are identical across builds and across thread
//!   counts (the cross-feature differential lives in CI's `fuzz_diff`
//!   matrix; this file pins determinism within one configuration).
//!
//! The allocator counters are process-global, so every test serializes on
//! [`session_lock`] and asserts with slack rather than exact equality:
//! the test harness and proptest allocate on their own schedule.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::Dataset;
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::telemetry::{self, mem};

/// The live/peak counters are process-global: a concurrently running test
/// would fold its allocations into this test's deltas. Every test holds
/// this lock across its measured region.
fn session_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic distinct-point dataset (same LCG family as the unit
/// tests' `test_data`, which integration tests cannot reach).
fn lcg_dataset(n: usize, domain: u64, seed: u64) -> Dataset {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % domain
    };
    let mut seen = std::collections::HashSet::new();
    let mut coords: Vec<(i64, i64)> = Vec::new();
    while coords.len() < n {
        let p = (next() as i64, next() as i64);
        if seen.insert(p) {
            coords.push(p);
        }
    }
    Dataset::from_coords(coords).expect("LCG coordinates are within bounds")
}

/// Slack for comparisons between `heap_bytes()` and allocator deltas:
/// covers leaked registry nodes, hashbrown capacity rounding, and
/// allocations the harness makes on other threads while we measure.
const SLACK: u64 = 1 << 19;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn heap_bytes_tracks_the_allocator_live_delta(
        n in 120usize..260,
        seed in 1u64..1_000,
    ) {
        if !mem::enabled() {
            return Ok(());
        }
        let _guard = session_lock();
        let ds = lcg_dataset(n, 4 * n as u64, seed);
        telemetry::reset_metrics();
        let before = mem::stats();
        let diagram = QuadrantEngine::Sweeping.build(&ds);
        let after = mem::stats();
        let live_delta = after.live_bytes.saturating_sub(before.live_bytes);
        let heap = diagram.heap_bytes() as u64;
        // The estimate must not claim more than the allocator retained...
        prop_assert!(
            heap <= live_delta + SLACK,
            "heap_bytes {heap} exceeds live delta {live_delta} + slack"
        );
        // ...and must account for the bulk of what was retained.
        prop_assert!(
            live_delta <= 2 * heap + SLACK,
            "live delta {live_delta} dwarfs heap_bytes {heap}: the estimate is missing arenas"
        );
        drop(diagram);
        // Dropping the diagram returns live bytes to (near) the baseline:
        // nothing retained escaped the accounting.
        let settled = mem::stats();
        prop_assert!(
            settled.live_bytes.saturating_sub(before.live_bytes) <= SLACK,
            "after drop, {} bytes over baseline remain live",
            settled.live_bytes.saturating_sub(before.live_bytes)
        );
    }
}

#[test]
fn parallel_build_charges_workers_not_stitch() {
    if !mem::enabled() {
        return;
    }
    let _guard = session_lock();
    let ds = lcg_dataset(220, 900, 7);
    // Exact thread semantics (no hardware cap): real worker threads spawn
    // even on a 1-core host, which is the point — attribution must follow
    // the thread, not the host width.
    let cfg = ParallelConfig::with_threads(4);
    telemetry::reset_metrics();
    let _diagram = QuadrantEngine::Sweeping.build_with(&ds, &cfg);
    let phases = mem::phase_stats();
    let by_phase = |p: mem::MemPhase| {
        *phases
            .iter()
            .find(|row| row.phase == p)
            .expect("phase_stats covers every phase")
    };
    let worker = by_phase(mem::MemPhase::PoolWorker);
    let stitch = by_phase(mem::MemPhase::PoolStitch);
    let build = by_phase(mem::MemPhase::QuadrantBuild);
    // The row-band compute happens on worker threads under the worker
    // span: it must carry allocations, and more than the sequential merge.
    assert!(
        worker.alloc_bytes > 0,
        "workers allocated nothing: {phases:?}"
    );
    assert!(
        worker.alloc_bytes > stitch.alloc_bytes,
        "stitch ({} B) outweighs workers ({} B): worker allocations are \
         landing in the wrong phase",
        stitch.alloc_bytes,
        worker.alloc_bytes
    );
    // The calling thread keeps its own build phase for the non-pool parts.
    assert!(
        build.alloc_bytes > 0,
        "the calling thread's build phase recorded nothing: {phases:?}"
    );
}

#[test]
fn counting_allocator_does_not_perturb_results() {
    let _guard = session_lock();
    let ds = lcg_dataset(80, 320, 11);
    let sequential = ParallelConfig::with_threads(0);
    let parallel = ParallelConfig::with_threads(4);
    let reference = QuadrantEngine::Sweeping.build_with(&ds, &sequential);
    for cfg in [&sequential, &parallel] {
        assert!(
            QuadrantEngine::Sweeping
                .build_with(&ds, cfg)
                .same_results(&reference),
            "results diverged at {} threads with the counting allocator installed",
            cfg.threads()
        );
    }
    let dyn_ds = lcg_dataset(14, 60, 3);
    let dyn_reference = DynamicEngine::Scanning.build_with(&dyn_ds, &sequential);
    assert!(
        DynamicEngine::Scanning
            .build_with(&dyn_ds, &parallel)
            .same_results(&dyn_reference),
        "dynamic results diverged under the counting allocator"
    );
}

#[test]
fn metrics_snapshot_carries_the_mem_rows_and_reset_reseats_peak() {
    if !mem::enabled() {
        // With the feature off the registry must stay free of mem rows.
        let snap = telemetry::metrics_snapshot();
        assert!(
            !snap.counters.iter().any(|c| c.name.starts_with("mem.")),
            "mem rows present without mem-telemetry"
        );
        return;
    }
    let _guard = session_lock();
    telemetry::reset_metrics();
    let ds = lcg_dataset(60, 240, 5);
    let _diagram = QuadrantEngine::Sweeping.build(&ds);
    let snap = telemetry::metrics_snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    };
    for key in [
        "mem.live_bytes",
        "mem.peak_bytes",
        "mem.alloc_bytes",
        "mem.allocs",
    ] {
        assert!(counter(key).is_some(), "missing {key} in snapshot");
    }
    assert!(
        counter("mem.phase.quadrant_build.alloc_bytes").unwrap_or(0) > 0,
        "build phase attribution missing from the snapshot"
    );
    assert!(
        snap.histograms.iter().any(|h| h.name == "mem.alloc_size"),
        "allocation-size histogram missing from the snapshot"
    );
    // Reset zeroes the churn counters and re-seats the peak at the
    // current live level, so the next measured region starts clean.
    telemetry::reset_metrics();
    let stats = mem::stats();
    assert_eq!(stats.alloc_bytes, 0);
    assert_eq!(stats.allocs, 0);
    assert!(stats.peak_bytes <= stats.live_bytes + SLACK);
}
