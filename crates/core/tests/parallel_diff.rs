//! Parallel-vs-sequential differential suite: every parallel engine must
//! produce a diagram identical to the sequential reference path
//! (`threads = 0`) at every tested thread count — 128 random cases per
//! query semantics at `threads ∈ {2, 3, 8}`, plus the degenerate
//! single-point and fully-tied datasets from the merge/diff edge-case
//! suite. This is the test-contract half of the determinism story; the
//! `skyline_core::invariants` layer separately validates every build in
//! debug mode regardless of thread count.

use proptest::prelude::*;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::Dataset;
use skyline_core::global;
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;

const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

/// Coordinates drawn from a deliberately small window around the origin so
/// ties, duplicate points, and negative coordinates are all frequent.
fn dataset_strategy(max_n: usize, lo: i64, hi: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((lo..hi, lo..hi), 1..=max_n)
}

fn check_quadrant(ds: &Dataset) -> Result<(), TestCaseError> {
    for engine in [QuadrantEngine::Scanning, QuadrantEngine::Sweeping] {
        let reference = engine.build_with(ds, &ParallelConfig::sequential());
        for threads in THREAD_COUNTS {
            let parallel_diag = engine.build_with(ds, &ParallelConfig::with_threads(threads));
            prop_assert!(
                parallel_diag.same_results(&reference),
                "quadrant {} diverged at threads = {}",
                engine.name(),
                threads
            );
        }
    }
    Ok(())
}

fn check_global(ds: &Dataset) -> Result<(), TestCaseError> {
    let reference = global::build_with(ds, QuadrantEngine::Sweeping, &ParallelConfig::sequential());
    for threads in THREAD_COUNTS {
        let parallel_diag = global::build_with(
            ds,
            QuadrantEngine::Sweeping,
            &ParallelConfig::with_threads(threads),
        );
        prop_assert!(
            parallel_diag.same_results(&reference),
            "global diverged at threads = {}",
            threads
        );
    }
    Ok(())
}

fn check_dynamic(ds: &Dataset) -> Result<(), TestCaseError> {
    for engine in DynamicEngine::ALL {
        let reference = engine.build_with(ds, &ParallelConfig::sequential());
        for threads in THREAD_COUNTS {
            let parallel_diag = engine.build_with(ds, &ParallelConfig::with_threads(threads));
            prop_assert!(
                parallel_diag.same_results(&reference),
                "dynamic {} diverged at threads = {}",
                engine.name(),
                threads
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quadrant_parallel_matches_sequential(coords in dataset_strategy(12, -6, 18)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        check_quadrant(&ds)?;
    }

    #[test]
    fn global_parallel_matches_sequential(coords in dataset_strategy(12, -6, 18)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        check_global(&ds)?;
    }

    #[test]
    fn dynamic_parallel_matches_sequential(coords in dataset_strategy(8, -6, 18)) {
        let ds = Dataset::from_coords(coords).expect("strategy yields non-empty in-range data");
        check_dynamic(&ds)?;
    }
}

/// The degenerate datasets from the merge/diff edge-case suite: a single
/// point (one-line grids) and fully-tied coordinates (every point equal, so
/// all bisectors coincide and results collapse to one set).
fn degenerate_datasets() -> Vec<Dataset> {
    vec![
        Dataset::from_coords([(7, 7)]).expect("single point is valid"),
        Dataset::from_coords([(0, 0)]).expect("single origin point is valid"),
        Dataset::from_coords([(5, 5), (5, 5), (5, 5), (5, 5)]).expect("fully tied is valid"),
        Dataset::from_coords([(3, 3), (3, 3)]).expect("tied pair is valid"),
    ]
}

#[test]
fn degenerate_datasets_quadrant() {
    for ds in degenerate_datasets() {
        check_quadrant(&ds).expect("degenerate quadrant dataset must match sequential");
    }
}

#[test]
fn degenerate_datasets_global() {
    for ds in degenerate_datasets() {
        check_global(&ds).expect("degenerate global dataset must match sequential");
    }
}

#[test]
fn degenerate_datasets_dynamic() {
    for ds in degenerate_datasets() {
        check_dynamic(&ds).expect("degenerate dynamic dataset must match sequential");
    }
}
