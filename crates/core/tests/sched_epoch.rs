//! Model-checked epoch-chain suite: every interleaving of publisher and
//! readers within the preemption bound is explored by the deterministic
//! scheduler in `skyline_core::sync::sched`, with happens-before analysis
//! verifying the `NextCell` release/acquire publication contract.
//!
//! Compiled only under `RUSTFLAGS="--cfg skyline_sched"`. This suite is
//! also the detection oracle for `cargo xtask sched-mutate`, which weakens
//! the `Release` store in `epoch.rs` and asserts these tests fail.
#![cfg(skyline_sched)]

use skyline_core::epoch::EpochPublisher;
use skyline_core::sync::sched;
use skyline_core::sync::Arc;

/// Resolve every process-global telemetry registration the epoch chain
/// touches (`epoch.publish` / `epoch.retire` counter sites, registry chain
/// nodes) before entering the model, so each explored execution follows an
/// identical sequence of scheduling points (replay determinism).
fn prewarm() {
    let mut p = EpochPublisher::new(0u64);
    p.publish(1);
    drop(p);
}

/// Concurrent publish/refresh: under every interleaving a reader sees
/// monotone epochs and a value consistent with its epoch — the acquire
/// load of `ready` must make the node's contents visible.
#[test]
fn publish_refresh_every_interleaving() {
    prewarm();
    sched::model(|| {
        let mut publisher = EpochPublisher::new(0u64);
        let mut reader = publisher.reader();
        let t = sched::spawn(move || {
            publisher.publish(1);
            publisher.publish(2);
            publisher.epoch()
        });
        let mut last = 0u64;
        for _ in 0..2 {
            let value = reader.refresh();
            let epoch = reader.epoch();
            assert!(epoch >= last, "epochs must be monotone per reader");
            assert_eq!(*value, epoch, "value and epoch must be consistent");
            last = epoch;
        }
        assert_eq!(t.join(), 2);
        // The publisher thread is joined: its tail is now ordered before
        // us, so the final refresh must land on epoch 2.
        assert_eq!(*reader.refresh(), 2);
        assert!(!reader.is_stale());
    });
}

/// Two independent readers racing one publisher: cursor clones advance
/// independently and each sees a consistent chain.
#[test]
fn two_readers_race_one_publisher() {
    prewarm();
    sched::model(|| {
        let mut publisher = EpochPublisher::new(0u64);
        let mut r1 = publisher.reader();
        let r2 = r1.clone();
        let t_pub = sched::spawn(move || {
            publisher.publish(1);
        });
        let t_read = sched::spawn(move || {
            let mut r2 = r2;
            let value = r2.refresh();
            assert_eq!(*value, r2.epoch());
            r2.epoch()
        });
        let value = r1.refresh();
        assert_eq!(*value, r1.epoch());
        t_pub.join();
        let other = t_read.join();
        assert!(other <= 1);
        assert_eq!(*r1.refresh(), 1);
    });
}

/// `is_stale` is an acquire probe: whenever it answers `true`, the
/// successor it implies must be fully visible to the same reader.
#[test]
fn stale_probe_implies_visible_successor() {
    prewarm();
    sched::model(|| {
        let mut publisher = EpochPublisher::new(10u64);
        let mut reader = publisher.reader();
        let t = sched::spawn(move || {
            publisher.publish(11);
        });
        if reader.is_stale() {
            let value = reader.refresh();
            assert_eq!(reader.epoch(), 1);
            assert_eq!(*value, 11);
        }
        t.join();
    });
}

/// Drop-order probe: counts value drops through a plain (non-model)
/// atomic, so bookkeeping adds no scheduling points of its own.
struct Probe {
    drops: Arc<std::sync::atomic::AtomicUsize>,
}

impl Probe {
    fn new(drops: &Arc<std::sync::atomic::AtomicUsize>) -> Self {
        Probe {
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Reclamation, publisher dropped first: nodes behind the slowest cursor
/// are freed; the chain never leaks and never double-frees, whatever the
/// interleaving of the reader's refresh with the publisher's drop.
#[test]
fn reclamation_publisher_drops_first() {
    prewarm();
    sched::model(|| {
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut publisher = EpochPublisher::new(Probe::new(&drops));
        let lagging = publisher.reader();
        let d = Arc::clone(&drops);
        let t = sched::spawn(move || {
            publisher.publish(Probe::new(&d));
            publisher.publish(Probe::new(&d));
            // Publisher gone: only the lagging cursor pins the chain now.
        });
        let mut reader = lagging;
        let pinned = reader.current();
        t.join();
        // Three probes exist (epochs 0, 1, 2); we still pin epoch 0 via
        // `pinned` and the cursor, so at most the middle one is free.
        assert!(drops.load(std::sync::atomic::Ordering::SeqCst) <= 1);
        drop(pinned);
        let latest = reader.refresh();
        assert_eq!(reader.epoch(), 2);
        // Cursor moved past epochs 0 and 1 and nothing else holds them:
        // exactly those two probes must be gone, epoch 2 stays alive.
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 2);
        drop(latest);
        drop(reader);
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 3);
    });
}

/// Reclamation, reader dropped first: a parked cursor released mid-publish
/// frees its run of nodes without touching the epochs the publisher still
/// owns.
#[test]
fn reclamation_reader_drops_first() {
    prewarm();
    sched::model(|| {
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut publisher = EpochPublisher::new(Probe::new(&drops));
        let parked = publisher.reader();
        let t = sched::spawn(move || {
            // Dropping the parked reader races the publisher's appends.
            drop(parked);
        });
        publisher.publish(Probe::new(&drops));
        t.join();
        // The parked reader is gone; only the publisher pins the chain.
        // Epoch 0 is unreachable from every remaining cursor.
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 1);
        drop(publisher);
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 2);
    });
}
