//! Model-checked flight-recorder suite: freeze (first trigger wins),
//! drain, and re-arm of `skyline_core::telemetry`'s anomaly dump machinery
//! under every explored interleaving.
//!
//! Compiled only under `RUSTFLAGS="--cfg skyline_sched"`.
//!
//! Model closures must be replay-deterministic, so these tests only use
//! the *manual* trigger (`trigger_anomaly`) — the latency trigger depends
//! on real wall-clock durations — and they drain the dump before the
//! closure returns so every execution starts from the same frozen-state.
#![cfg(skyline_sched)]

use skyline_core::sync::sched;
use skyline_core::telemetry::{anomaly_pending, take_anomaly_dump, trigger_anomaly};

/// Resolve the process-global telemetry state the flight recorder touches
/// (the `now_ns` epoch, the dump-state mutex cell, the calling pattern of
/// a first trigger) before entering the model, so every explored
/// execution follows an identical sequence of scheduling points.
fn prewarm() {
    skyline_core::telemetry::now_ns();
    {
        let _span = skyline_core::span!("flight.prewarm");
    }
    trigger_anomaly("prewarm");
    let dump = take_anomaly_dump();
    assert!(dump.is_some(), "prewarm trigger must freeze the recorder");
}

/// Freeze/drain/re-arm round trip on one thread inside the model: spans
/// land in the ring, the trigger freezes them, the dump drains exactly
/// once and re-arms.
#[test]
fn freeze_drain_rearm_single_thread() {
    prewarm();
    sched::model(|| {
        {
            let _a = skyline_core::span!("flight.root", 1);
        }
        {
            let _b = skyline_core::span!("flight.root", 2);
        }
        trigger_anomaly("sched-probe");
        assert!(anomaly_pending());
        let dump = take_anomaly_dump().expect("trigger fired, dump must be frozen");
        assert_eq!(dump.reason, "sched-probe");
        assert!(dump.trigger_ns > 0);
        let mine = dump
            .events
            .iter()
            .filter(|e| e.name == "flight.root")
            .count();
        assert_eq!(mine, 2, "both ring events of this thread must drain");
        assert!(!anomaly_pending(), "taking the dump must re-arm");
        assert!(
            take_anomaly_dump().is_none(),
            "a drained dump must not be takeable twice"
        );
    });
}

/// Two racing triggers: first one wins the freeze, the loser is absorbed,
/// and the drained dump carries the winner's reason — under every
/// interleaving of the compare-exchange race.
#[test]
fn first_trigger_wins_under_race() {
    prewarm();
    sched::model(|| {
        let t = sched::spawn(|| {
            trigger_anomaly("racer-a");
        });
        trigger_anomaly("racer-b");
        t.join();
        let dump = take_anomaly_dump().expect("some trigger fired in every interleaving");
        assert!(
            dump.reason == "racer-a" || dump.reason == "racer-b",
            "the dump reason must be one of the racing triggers"
        );
        assert!(!anomaly_pending());
    });
}

/// A span closing on another thread after the freeze contributes that
/// thread's ring to the dump before the thread exits — the dump drained
/// after joining sees the worker's events in every interleaving.
#[test]
fn worker_ring_contributes_after_freeze() {
    prewarm();
    sched::model(|| {
        trigger_anomaly("sched-probe");
        let t = sched::spawn(|| {
            // Closing a span after the freeze contributes this thread's
            // ring (the span itself is in it by then).
            let _w = skyline_core::span!("flight.worker");
        });
        t.join();
        let dump = take_anomaly_dump().expect("trigger fired before the worker ran");
        let worker_events = dump
            .events
            .iter()
            .filter(|e| e.name == "flight.worker")
            .count();
        assert_eq!(
            worker_events, 1,
            "the worker's post-freeze span must be in the dump"
        );
    });
}
