//! Self-tests for the deterministic interleaving checker itself
//! (`skyline_core::sync::sched`): classic litmus patterns that must pass,
//! and seeded ordering bugs that must be caught.
//!
//! Compiled only under `RUSTFLAGS="--cfg skyline_sched"`.
#![cfg(skyline_sched)]

use skyline_core::sync::sched;
use skyline_core::sync::{Arc, AtomicBool, AtomicU64, AtomicUsize, Mutex, OnceLock, Ordering};

/// Message passing with a correct Release/Acquire pair must pass every
/// interleaving: when the reader sees the flag, it must see the data.
#[test]
fn release_acquire_message_passing_passes() {
    sched::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = sched::spawn(move || {
            d.store(42, Ordering::Release);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Acquire), 42);
        }
        t.join();
    });
}

/// Weakening the flag publication to `Relaxed` is the seeded bug the
/// checker exists to catch: some interleaving has the acquire load observe
/// an unsynchronised store.
#[test]
#[should_panic(expected = "sched-finding")]
fn relaxed_publication_is_caught() {
    sched::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let t = sched::spawn(move || {
            f.store(true, Ordering::Relaxed);
        });
        let _ = flag.load(Ordering::Acquire);
        t.join();
    });
}

/// A relaxed load is not allowed to stand in for the acquire side of a
/// publication either: the location has release history, so reading it
/// relaxed across threads is flagged.
#[test]
#[should_panic(expected = "sched-finding")]
fn relaxed_load_of_published_flag_is_caught() {
    sched::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let t = sched::spawn(move || {
            f.store(true, Ordering::Release);
        });
        let _ = flag.load(Ordering::Relaxed);
        t.join();
    });
}

/// `SeqCst` is banned workspace-wide (documented Acquire/Release pairs
/// only), and the checker enforces it dynamically too.
#[test]
#[should_panic(expected = "SeqCst is banned")]
fn seqcst_is_caught() {
    sched::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        x.store(1, Ordering::SeqCst);
    });
}

/// Pure relaxed statistics (never used to publish anything) are fine: both
/// sides relaxed, no release history, no findings.
#[test]
fn relaxed_counter_statistics_pass() {
    sched::model(|| {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let t = sched::spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        hits.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    });
}

/// The model `OnceLock` preserves first-write-wins under every
/// interleaving: exactly one `set` succeeds and both threads then agree on
/// the stored value.
#[test]
fn oncelock_first_write_wins() {
    sched::model(|| {
        let cell = Arc::new(OnceLock::new());
        let c = Arc::clone(&cell);
        let t = sched::spawn(move || c.set(1u64).is_ok());
        let mine = cell.set(2u64).is_ok();
        let theirs = t.join();
        assert!(mine != theirs, "exactly one writer must win the cell");
        let v = *cell.get().expect("cell must be set after both writers ran");
        assert!(v == 1 || v == 2);
    });
}

/// The model `Mutex` provides mutual exclusion and carries happens-before:
/// two increments through the lock never race, so the final count is exact.
#[test]
fn mutex_counts_exactly() {
    sched::model(|| {
        let count = Arc::new(Mutex::new(0u64));
        let c = Arc::clone(&count);
        let t = sched::spawn(move || {
            if let Ok(mut g) = c.lock() {
                *g += 1;
            }
        });
        if let Ok(mut g) = count.lock() {
            *g += 1;
        }
        t.join();
        let final_count = count.lock().map(|g| *g).unwrap_or(0);
        assert_eq!(final_count, 2);
    });
}

/// ABBA lock ordering must be reported as a deadlock in the interleaving
/// that takes one lock on each thread before either takes its second.
#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_order_deadlocks() {
    sched::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = sched::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
}

/// Join transfers the child's happens-before: after `join`, reading the
/// child's relaxed-written then release-published state is ordered even
/// through a plain relaxed load.
#[test]
fn join_edge_orders_child_writes() {
    sched::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = sched::spawn(move || {
            x2.store(9, Ordering::Release);
        });
        t.join();
        // Ordered by the join edge, so even a relaxed read is clean.
        assert_eq!(x.load(Ordering::Relaxed), 9);
    });
}

/// Exhaustiveness smoke test: with two racing relaxed-counter threads the
/// checker terminates (DFS backtracking is finite at the default
/// preemption bound) and explores more than one execution.
#[test]
fn dfs_terminates_and_explores() {
    // Indirect evidence of multi-execution exploration: a OnceLock race
    // where either writer can win requires at least two explored
    // schedules to observe both outcomes. Record the outcomes seen.
    use std::sync::atomic::{AtomicU8, Ordering as StdOrdering};
    static SEEN: AtomicU8 = AtomicU8::new(0);
    SEEN.store(0, StdOrdering::SeqCst);
    sched::model(|| {
        let cell = Arc::new(OnceLock::new());
        let c = Arc::clone(&cell);
        let t = sched::spawn(move || {
            let _ = c.set(1u8);
        });
        let _ = cell.set(2u8);
        t.join();
        let winner = *cell.get().expect("one writer always succeeds");
        SEEN.fetch_or(winner, StdOrdering::SeqCst);
    });
    assert_eq!(
        SEEN.load(StdOrdering::SeqCst),
        3,
        "both race outcomes must be explored by the schedule search"
    );
}
