//! Property-based round-trip and corruption suite for the binary diagram
//! format (`serialize.rs`).
//!
//! Two families of properties:
//!
//! * **Round-trip identity** — for random datasets and engines, decoding an
//!   encoding reproduces the diagram exactly (same grid lines, same interned
//!   results, same answers at random probes).
//! * **Corruption totality** — *every* single-bit flip, truncation, and
//!   trailing-junk mutation of a valid encoding yields `Err(_)`. The format
//!   must never decode mutated bytes into a structurally valid but *wrong*
//!   diagram; the whole-body checksum plus the structural validators make
//!   this total, and these tests enforce it over random mutation positions
//!   rather than the handful of hand-picked offsets in the unit tests.

use proptest::prelude::*;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::serialize::{
    decode_cell_diagram, decode_subcell_diagram, encode_cell_diagram, encode_subcell_diagram,
};

/// Distinct-pair dataset from raw proptest coordinates (`None` when every
/// pair was a duplicate of an earlier one — impossible here since inputs
/// are non-empty, but kept total).
fn dataset_from(pairs: Vec<(i64, i64)>) -> Option<Dataset> {
    let mut seen = std::collections::HashSet::new();
    let coords: Vec<(i64, i64)> = pairs.into_iter().filter(|p| seen.insert(*p)).collect();
    if coords.is_empty() {
        None
    } else {
        Dataset::from_coords(coords).ok()
    }
}

fn pick_quadrant_engine(pick: usize) -> QuadrantEngine {
    QuadrantEngine::ALL[pick % QuadrantEngine::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cell_roundtrip_is_identity(
        pairs in prop::collection::vec((0i64..500, 0i64..500), 1..40),
        engine_pick in 0usize..8,
        probes in prop::collection::vec((-10i64..520, -10i64..520), 8),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let diagram = pick_quadrant_engine(engine_pick).build(&ds);
        let decoded = decode_cell_diagram(&encode_cell_diagram(&diagram));
        let decoded = match decoded {
            Ok(d) => d,
            Err(e) => return Err(TestCaseError::fail(format!("fresh bytes failed: {e}"))),
        };
        prop_assert_eq!(decoded.grid().x_lines(), diagram.grid().x_lines());
        prop_assert_eq!(decoded.grid().y_lines(), diagram.grid().y_lines());
        prop_assert!(decoded.same_results(&diagram), "results diverged");
        for (x, y) in probes {
            let q = Point::new(x, y);
            prop_assert_eq!(decoded.query(q), diagram.query(q), "query at {}", q);
        }
    }

    #[test]
    fn subcell_roundtrip_is_identity(
        pairs in prop::collection::vec((0i64..120, 0i64..120), 1..10),
        scanning in 0usize..2,
        probes in prop::collection::vec((-4i64..130, -4i64..130), 6),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let engine = if scanning == 0 { DynamicEngine::Scanning } else { DynamicEngine::Subset };
        let diagram = engine.build(&ds);
        let decoded = decode_subcell_diagram(&encode_subcell_diagram(&diagram));
        let decoded = match decoded {
            Ok(d) => d,
            Err(e) => return Err(TestCaseError::fail(format!("fresh bytes failed: {e}"))),
        };
        prop_assert!(decoded.same_results(&diagram), "results diverged");
        for (x, y) in probes {
            let q = Point::new(x, y);
            prop_assert_eq!(decoded.query(q), diagram.query(q), "query at {}", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_single_bit_flip_is_rejected(
        pairs in prop::collection::vec((0i64..200, 0i64..200), 1..16),
        pos in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let bytes = encode_cell_diagram(&QuadrantEngine::Sweeping.build(&ds));
        let mut bad = bytes.clone();
        let i = pos.index(bad.len());
        bad[i] ^= 1 << bit;
        prop_assert!(
            decode_cell_diagram(&bad).is_err(),
            "bit {} of byte {}/{} flipped silently", bit, i, bytes.len()
        );
    }

    #[test]
    fn every_truncation_is_rejected(
        pairs in prop::collection::vec((0i64..200, 0i64..200), 1..16),
        pos in any::<prop::sample::Index>(),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let bytes = encode_cell_diagram(&QuadrantEngine::Scanning.build(&ds));
        // index(len) < len, so every cut is a *proper* prefix.
        let cut = pos.index(bytes.len());
        prop_assert!(
            decode_cell_diagram(&bytes[..cut]).is_err(),
            "prefix of {}/{} bytes decoded", cut, bytes.len()
        );
    }

    #[test]
    fn trailing_junk_is_rejected(
        pairs in prop::collection::vec((0i64..200, 0i64..200), 1..16),
        junk in prop::collection::vec(0u8..=255, 1..9),
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let mut bytes = encode_cell_diagram(&QuadrantEngine::Sweeping.build(&ds));
        bytes.extend_from_slice(&junk);
        prop_assert!(
            decode_cell_diagram(&bytes).is_err(),
            "{} junk bytes accepted", junk.len()
        );
    }

    #[test]
    fn subcell_bit_flips_are_rejected(
        pairs in prop::collection::vec((0i64..60, 0i64..60), 1..7),
        pos in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let bytes = encode_subcell_diagram(&DynamicEngine::Scanning.build(&ds));
        let mut bad = bytes.clone();
        let i = pos.index(bad.len());
        bad[i] ^= 1 << bit;
        prop_assert!(
            decode_subcell_diagram(&bad).is_err(),
            "bit {} of byte {}/{} flipped silently", bit, i, bytes.len()
        );
    }
}
