//! Integration tests for the telemetry layer.
//!
//! Three guarantees are pinned here, over the real construction engines
//! rather than hand-made spans:
//!
//! * **Well-parenthesized spans** — for random datasets, engines, and
//!   thread counts, the events drained from a recording session form a
//!   proper forest per thread: sorted pre-order, every child interval
//!   contained in its parent, and every recorded `depth` equal to the
//!   nesting depth reconstructed from the intervals alone.
//! * **Observation does not perturb** — diagrams built with a recording
//!   session active are identical (`same_results`) to diagrams built with
//!   telemetry idle, at sequential and parallel thread counts.
//! * **Metrics are session-independent** — counters accumulate with no
//!   recording session active, and reset only via `reset_metrics`.
//!
//! Recording sessions and the metrics registry are process-global, so every
//! test that touches them serializes on [`session_lock`].

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::Dataset;
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::telemetry::{self, SpanEvent};

/// Recording sessions are process-global: a concurrently running test that
/// called `stop_recording` would end this test's session mid-build. Every
/// session-opening test holds this lock for its whole session.
fn session_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic distinct-point dataset (same LCG family as the unit
/// tests' `test_data`, which integration tests cannot reach).
fn lcg_dataset(n: usize, domain: u64, seed: u64) -> Dataset {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % domain
    };
    let mut seen = std::collections::HashSet::new();
    let mut coords: Vec<(i64, i64)> = Vec::new();
    while coords.len() < n {
        let p = (next() as i64, next() as i64);
        if seen.insert(p) {
            coords.push(p);
        }
    }
    Dataset::from_coords(coords).expect("LCG coordinates are within bounds")
}

/// Distinct-pair dataset from raw proptest coordinates.
fn dataset_from(pairs: Vec<(i64, i64)>) -> Option<Dataset> {
    let mut seen = std::collections::HashSet::new();
    let coords: Vec<(i64, i64)> = pairs.into_iter().filter(|p| seen.insert(*p)).collect();
    if coords.is_empty() {
        None
    } else {
        Dataset::from_coords(coords).ok()
    }
}

/// Checks that one thread's events (already in the sink's
/// `(start, Reverse(dur))` pre-order) form a properly nested forest and
/// that each event's recorded depth matches the reconstructed nesting.
fn assert_well_parenthesized(thread: u64, events: &[&SpanEvent]) -> Result<(), TestCaseError> {
    let mut stack: Vec<&SpanEvent> = Vec::new();
    for e in events {
        let end = e.start_ns.checked_add(e.dur_ns);
        prop_assert!(end.is_some(), "span `{}` end overflows u64", e.name);
        let end = end.expect("checked just above");
        while let Some(top) = stack.last() {
            if e.start_ns >= top.start_ns + top.dur_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            prop_assert!(
                end <= top.start_ns + top.dur_ns,
                "span `{}` [{}, {}) leaks out of parent `{}` [{}, {}) on thread {}",
                e.name,
                e.start_ns,
                end,
                top.name,
                top.start_ns,
                top.start_ns + top.dur_ns,
                thread
            );
        }
        prop_assert_eq!(
            e.depth as usize,
            stack.len(),
            "span `{}` recorded depth {} but nests {} deep on thread {}",
            e.name,
            e.depth,
            stack.len(),
            thread
        );
        stack.push(e);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random builds at random thread counts always drain a per-thread
    /// well-parenthesized span forest.
    #[test]
    fn recorded_spans_nest_well_parenthesized(
        pairs in prop::collection::vec((0i64..400, 0i64..400), 1..50),
        engine_pick in 0usize..8,
        threads in 0usize..5,
    ) {
        let Some(ds) = dataset_from(pairs) else { return Ok(()) };
        let engine = QuadrantEngine::ALL[engine_pick % QuadrantEngine::ALL.len()];
        let _guard = session_lock();
        telemetry::start_recording();
        let _ = skyline_core::global::build_with(&ds, engine, &ParallelConfig::with_threads(threads));
        let events = telemetry::stop_recording();

        if cfg!(feature = "telemetry") {
            prop_assert!(!events.is_empty(), "a recorded build must emit spans");
            prop_assert!(
                events.iter().any(|e| e.name == "global.build"),
                "the root build span is missing"
            );
        } else {
            prop_assert!(events.is_empty(), "feature-off probes must be no-ops");
        }

        let mut by_thread: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
        for e in &events {
            by_thread.entry(e.thread).or_default().push(e);
        }
        for (thread, evs) in by_thread {
            assert_well_parenthesized(thread, &evs)?;
        }
    }
}

/// Recording on produces the same diagrams as recording off, sequentially
/// and in parallel — observation must not perturb the computation.
#[test]
fn diagrams_are_identical_with_recording_on_and_off() {
    let _guard = session_lock();
    for seed in [3u64, 11] {
        let ds = lcg_dataset(36, 120, seed);
        for threads in [0usize, 1, 4] {
            let cfg = ParallelConfig::with_threads(threads);
            assert!(!telemetry::recording(), "no session should be active yet");
            let quadrant_off = QuadrantEngine::Sweeping.build_with(&ds, &cfg);
            let global_off = skyline_core::global::build_with(&ds, QuadrantEngine::Sweeping, &cfg);
            let dynamic_off = DynamicEngine::Scanning.build_with(&ds, &cfg);

            telemetry::start_recording();
            let quadrant_on = QuadrantEngine::Sweeping.build_with(&ds, &cfg);
            let global_on = skyline_core::global::build_with(&ds, QuadrantEngine::Sweeping, &cfg);
            let dynamic_on = DynamicEngine::Scanning.build_with(&ds, &cfg);
            let events = telemetry::stop_recording();

            assert!(
                quadrant_on.same_results(&quadrant_off),
                "quadrant diverged under recording (seed {seed}, threads {threads})"
            );
            assert!(
                global_on.same_results(&global_off),
                "global diverged under recording (seed {seed}, threads {threads})"
            );
            assert!(
                dynamic_on.same_results(&dynamic_off),
                "dynamic diverged under recording (seed {seed}, threads {threads})"
            );
            if cfg!(feature = "telemetry") {
                assert!(!events.is_empty(), "the recorded half must emit spans");
            }
        }
    }
}

/// Counters accumulate without any recording session and reset on demand;
/// with the feature off the registry stays empty.
#[test]
fn metrics_accumulate_independently_of_recording_sessions() {
    let _guard = session_lock();
    telemetry::reset_metrics();
    let ds = lcg_dataset(30, 100, 5);
    assert!(!telemetry::recording());
    let _ = QuadrantEngine::Sweeping.build_with(&ds, &ParallelConfig::sequential());
    let snapshot = telemetry::metrics_snapshot();
    if cfg!(feature = "telemetry") {
        let builds = snapshot
            .counters
            .iter()
            .find(|c| c.name == "quadrant.builds")
            .expect("the sweeping build must bump its engine counter");
        assert!(builds.value >= 1);
        // Snapshots are name-sorted so exporters emit stable output.
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        telemetry::reset_metrics();
        let cleared = telemetry::metrics_snapshot();
        // The mem.* rows are exempt: live/peak are gauges of real
        // outstanding memory (reset re-seats, never zeroes them), and
        // assembling this very snapshot allocates, so the churn rows can
        // tick between the reset and the read. Reset semantics for the
        // allocator counters are pinned in tests/mem_accounting.rs.
        assert!(cleared
            .counters
            .iter()
            .filter(|c| !c.name.starts_with("mem."))
            .all(|c| c.value == 0));
    } else {
        // With `telemetry` off the registry is empty; the independent
        // `mem-telemetry` feature may still contribute its mem.* rows
        // and the allocation-size histogram.
        assert!(snapshot.counters.iter().all(|c| c.name.starts_with("mem.")));
        assert!(snapshot
            .histograms
            .iter()
            .all(|h| h.name.starts_with("mem.")));
    }
}
