//! Minimal CSV import/export for datasets.
//!
//! The format is intentionally tiny: one integer row per point, comma
//! separators, optional `#` comment lines and blank lines, no quoting. It
//! exists so users can feed their own tables to the examples and so
//! experiment inputs can be checked into a repository.

use std::fmt::Write as _;

use skyline_core::geometry::{Coord, Dataset, DatasetD, PointD};

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A field failed integer parsing; payload is `(line, field)`.
    BadInteger(usize, String),
    /// A row had a different arity than the first row; `(line, got, want)`.
    RaggedRow(usize, usize, usize),
    /// No data rows at all.
    Empty,
    /// The parsed rows violated dataset invariants.
    Dataset(skyline_core::Error),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadInteger(line, field) => {
                write!(f, "line {line}: cannot parse integer from {field:?}")
            }
            CsvError::RaggedRow(line, got, want) => {
                write!(f, "line {line}: expected {want} fields, found {got}")
            }
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::Dataset(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses integer rows from CSV text.
pub fn parse_rows(text: &str) -> Result<Vec<Vec<Coord>>, CsvError> {
    let mut rows: Vec<Vec<Coord>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<Coord>, CsvError> = line
            .split(',')
            .map(|field| {
                field
                    .trim()
                    .parse::<Coord>()
                    .map_err(|_| CsvError::BadInteger(lineno + 1, field.trim().to_string()))
            })
            .collect();
        let row = row?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CsvError::RaggedRow(lineno + 1, row.len(), first.len()));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Parses a planar dataset from CSV text with exactly two columns.
pub fn parse_dataset_2d(text: &str) -> Result<Dataset, CsvError> {
    let rows = parse_rows(text)?;
    if rows[0].len() != 2 {
        return Err(CsvError::RaggedRow(1, rows[0].len(), 2));
    }
    Dataset::from_coords(rows.into_iter().map(|r| (r[0], r[1]))).map_err(CsvError::Dataset)
}

/// Parses a d-dimensional dataset from CSV text.
pub fn parse_dataset_d(text: &str) -> Result<DatasetD, CsvError> {
    let rows = parse_rows(text)?;
    DatasetD::new(rows.into_iter().map(PointD::new).collect()).map_err(CsvError::Dataset)
}

/// Serializes a planar dataset to CSV text.
pub fn to_csv_2d(dataset: &Dataset) -> String {
    let mut out = String::new();
    for p in dataset.points() {
        writeln!(out, "{},{}", p.x, p.y).expect("string writes cannot fail");
    }
    out
}

/// Serializes a d-dimensional dataset to CSV text.
pub fn to_csv_d(dataset: &DatasetD) -> String {
    let mut out = String::new();
    for p in dataset.points() {
        let row: Vec<String> = p.coords().iter().map(|c| c.to_string()).collect();
        writeln!(out, "{}", row.join(",")).expect("string writes cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_2d() {
        let ds = crate::hotel::dataset();
        let text = to_csv_2d(&ds);
        assert_eq!(parse_dataset_2d(&text).unwrap(), ds);
    }

    #[test]
    fn roundtrip_d() {
        let ds = crate::nba::players_d(20, 3, 4);
        let text = to_csv_d(&ds);
        assert_eq!(parse_dataset_d(&text).unwrap(), ds);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let ds = parse_dataset_2d("# header\n\n1, 2\n  3 ,4\n").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(skyline_core::geometry::PointId(1)).x, 3);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_rows(""), Err(CsvError::Empty));
        assert_eq!(parse_rows("# only comments\n"), Err(CsvError::Empty));
        assert!(matches!(parse_rows("1,x"), Err(CsvError::BadInteger(1, _))));
        assert_eq!(parse_rows("1,2\n3\n"), Err(CsvError::RaggedRow(2, 1, 2)));
        assert!(matches!(
            parse_dataset_2d("1,2,3\n"),
            Err(CsvError::RaggedRow(1, 3, 2))
        ));
        assert!(matches!(parse_dataset_d("1\n"), Err(CsvError::Dataset(_))));
    }

    #[test]
    fn error_display() {
        assert!(CsvError::BadInteger(3, "x".into())
            .to_string()
            .contains("line 3"));
        assert!(CsvError::RaggedRow(2, 1, 2)
            .to_string()
            .contains("expected 2"));
        assert!(CsvError::Empty.to_string().contains("no data"));
    }
}
