//! Additional dataset shapes beyond the three Börzsönyi distributions:
//! Zipf-skewed attributes (common in web/product data) and clustered
//! points (mixtures), used by the robustness tests and available to the
//! CLI's `gen` command via the library API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_core::geometry::{Coord, Dataset};

/// Zipf-like attribute values over `[0, domain)`: rank-frequency skew with
/// exponent `s` (values near 0 are common, the tail is long). Sampled by
/// inverse-CDF over precomputed weights — exact enough for benchmark data.
pub fn zipf_2d(n: usize, domain: Coord, exponent: f64, seed: u64) -> Dataset {
    assert!(n > 0, "need at least one point");
    assert!(domain >= 2, "domain must have at least two values");
    assert!(exponent > 0.0, "zipf exponent must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Cumulative weights for ranks 1..=domain.
    let mut cumulative = Vec::with_capacity(domain as usize);
    let mut total = 0.0f64;
    for k in 1..=domain {
        total += 1.0 / (k as f64).powf(exponent);
        cumulative.push(total);
    }
    let draw = move |rng: &mut StdRng| -> Coord {
        let target = rng.gen::<f64>() * total;
        cumulative.partition_point(|&c| c < target) as Coord
    };

    Dataset::from_coords((0..n).map(|_| (draw(&mut rng), draw(&mut rng))))
        .expect("n > 0 points with in-domain coordinates form a valid dataset")
}

/// A mixture of Gaussian-ish clusters inside `[0, domain)²`; cluster
/// centers are themselves uniform. Produces diagrams with large
/// homogeneous polyominoes between clusters.
pub fn clustered_2d(n: usize, domain: Coord, clusters: usize, seed: u64) -> Dataset {
    assert!(n > 0, "need at least one point");
    assert!(clusters > 0, "need at least one cluster");
    assert!(domain >= 2, "domain must have at least two values");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..clusters)
        .map(|_| {
            (
                rng.gen::<f64>() * domain as f64,
                rng.gen::<f64>() * domain as f64,
            )
        })
        .collect();
    let spread = domain as f64 / (clusters as f64).sqrt() / 6.0;
    let normal =
        move |rng: &mut StdRng| -> f64 { (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0 };

    Dataset::from_coords((0..n).map(|_| {
        let (cx, cy) = centers[rng.gen_range(0..clusters)];
        let x = (cx + normal(&mut rng) * spread).round() as Coord;
        let y = (cy + normal(&mut rng) * spread).round() as Coord;
        (x.clamp(0, domain - 1), y.clamp(0, domain - 1))
    }))
    .expect("n > 0 points clamped into the domain form a valid dataset")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_in_domain() {
        let a = zipf_2d(300, 100, 1.1, 7);
        assert_eq!(a, zipf_2d(300, 100, 1.1, 7));
        for p in a.points() {
            assert!((0..100).contains(&p.x) && (0..100).contains(&p.y));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_small_values() {
        let ds = zipf_2d(2000, 1000, 1.2, 3);
        let small = ds.points().iter().filter(|p| p.x < 10).count();
        let large = ds.points().iter().filter(|p| p.x >= 500).count();
        assert!(small > large * 3, "small {small} vs large {large}");
    }

    #[test]
    fn clusters_concentrate_points() {
        let ds = clustered_2d(1000, 1000, 3, 5);
        assert_eq!(ds.len(), 1000);
        // Mean absolute deviation from the global mean should be well
        // below the uniform expectation (~250 per axis for domain 1000).
        let mean_x: f64 = ds.points().iter().map(|p| p.x as f64).sum::<f64>() / ds.len() as f64;
        let mad: f64 = ds
            .points()
            .iter()
            .map(|p| (p.x as f64 - mean_x).abs())
            .sum::<f64>()
            / ds.len() as f64;
        assert!(mad < 400.0);
        for p in ds.points() {
            assert!((0..1000).contains(&p.x) && (0..1000).contains(&p.y));
        }
    }

    #[test]
    fn engines_handle_extra_distributions() {
        use skyline_core::quadrant::QuadrantEngine;
        for ds in [zipf_2d(60, 30, 1.0, 1), clustered_2d(60, 200, 4, 2)] {
            let reference = QuadrantEngine::Baseline.build(&ds);
            for engine in QuadrantEngine::ALL {
                assert!(
                    engine.build(&ds).same_results(&reference),
                    "{}",
                    engine.name()
                );
            }
        }
    }
}
