//! Synthetic dataset generators in the style of Börzsönyi et al. (the
//! standard benchmark distributions for skyline papers, used by the ICDE'18
//! evaluation): **independent**, **correlated**, and **anti-correlated**,
//! over a bounded integer domain `[0, s)` per dimension.
//!
//! All generators are deterministic given a seed, so every experiment in
//! EXPERIMENTS.md is exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_core::geometry::{Coord, Dataset, DatasetD, PointD};

/// The three benchmark distributions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// Each attribute drawn independently and uniformly.
    Independent,
    /// Attributes positively correlated: points cluster around the main
    /// diagonal, producing *few* skyline points (easy instances).
    Correlated,
    /// Attributes negatively correlated: points cluster around the
    /// anti-diagonal, producing *many* skyline points (hard instances).
    Anticorrelated,
}

impl Distribution {
    /// All distributions, in the order the experiment tables report them.
    pub const ALL: [Distribution; 3] = [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::Anticorrelated,
    ];

    /// Short stable name used in bench ids and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Independent => "inde",
            Distribution::Correlated => "corr",
            Distribution::Anticorrelated => "anti",
        }
    }
}

/// Full specification of a synthetic dataset; the unit of reproducibility
/// for every experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DatasetSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality (2 for the planar engines).
    pub dims: usize,
    /// Domain size per dimension: coordinates lie in `[0, domain)`.
    pub domain: Coord,
    /// Distribution family.
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Planar dataset for this spec.
    ///
    /// # Panics
    /// Panics if `dims != 2`; use [`DatasetSpec::build_d`] otherwise.
    pub fn build_2d(&self) -> Dataset {
        assert_eq!(self.dims, 2, "build_2d requires dims == 2");
        let rows = generate_rows(self);
        Dataset::from_coords(rows.into_iter().map(|r| (r[0], r[1])))
            .expect("generator output is valid")
    }

    /// d-dimensional dataset for this spec.
    pub fn build_d(&self) -> DatasetD {
        let rows = generate_rows(self);
        DatasetD::new(rows.into_iter().map(PointD::new).collect())
            .expect("generator output is valid")
    }
}

/// Approximate standard normal via Irwin–Hall (sum of 12 uniforms − 6);
/// avoids a `rand_distr` dependency and is plenty for benchmark shaping.
fn normal(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

fn clamp_to_domain(v: f64, domain: Coord) -> Coord {
    (v.round() as Coord).clamp(0, domain - 1)
}

fn generate_rows(spec: &DatasetSpec) -> Vec<Vec<Coord>> {
    assert!(spec.n > 0, "need at least one point");
    assert!(spec.domain >= 2, "domain must have at least two values");
    assert!((2..=6).contains(&spec.dims), "dims must be in 2..=6");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let s = spec.domain as f64;
    (0..spec.n)
        .map(|_| match spec.distribution {
            Distribution::Independent => (0..spec.dims)
                .map(|_| rng.gen_range(0..spec.domain))
                .collect(),
            Distribution::Correlated => {
                // A common latent value plus small per-dimension noise.
                let t = rng.gen::<f64>() * s;
                (0..spec.dims)
                    .map(|_| clamp_to_domain(t + normal(&mut rng) * s / 20.0, spec.domain))
                    .collect()
            }
            Distribution::Anticorrelated => {
                // Points near the hyperplane Σ coords ≈ s·d/2: draw a
                // uniform split of the (jittered) total across dimensions.
                let total = s * spec.dims as f64 / 2.0 + normal(&mut rng) * s / 12.0;
                let mut weights: Vec<f64> =
                    (0..spec.dims).map(|_| rng.gen::<f64>() + 1e-9).collect();
                let wsum: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w = *w / wsum * total;
                }
                weights
                    .into_iter()
                    .map(|w| clamp_to_domain(w, spec.domain))
                    .collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::skyline::sort_sweep::skyline_2d;

    fn spec(distribution: Distribution) -> DatasetSpec {
        DatasetSpec {
            n: 500,
            dims: 2,
            domain: 1000,
            distribution,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for dist in Distribution::ALL {
            let a = spec(dist).build_2d();
            let b = spec(dist).build_2d();
            assert_eq!(a, b, "{}", dist.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(Distribution::Independent).build_2d();
        let mut s = spec(Distribution::Independent);
        s.seed = 43;
        assert_ne!(a, s.build_2d());
    }

    #[test]
    fn coordinates_stay_in_domain() {
        for dist in Distribution::ALL {
            let ds = spec(dist).build_2d();
            for p in ds.points() {
                assert!((0..1000).contains(&p.x), "{}", dist.name());
                assert!((0..1000).contains(&p.y), "{}", dist.name());
            }
        }
    }

    #[test]
    fn skyline_size_ordering_matches_the_literature() {
        // Correlated data has few skyline points, anti-correlated many:
        // this ordering is the entire reason the paper sweeps all three.
        let corr = skyline_2d(&spec(Distribution::Correlated).build_2d()).len();
        let inde = skyline_2d(&spec(Distribution::Independent).build_2d()).len();
        let anti = skyline_2d(&spec(Distribution::Anticorrelated).build_2d()).len();
        assert!(corr < inde, "corr {corr} vs inde {inde}");
        assert!(inde < anti, "inde {inde} vs anti {anti}");
    }

    #[test]
    fn d_dimensional_generation() {
        let s = DatasetSpec {
            n: 100,
            dims: 4,
            domain: 50,
            distribution: Distribution::Anticorrelated,
            seed: 7,
        };
        let ds = s.build_d();
        assert_eq!(ds.dims(), 4);
        assert_eq!(ds.len(), 100);
        for p in ds.points() {
            assert!(p.coords().iter().all(|c| (0..50).contains(c)));
        }
    }

    #[test]
    fn anticorrelated_sums_concentrate() {
        let ds = spec(Distribution::Anticorrelated).build_2d();
        let mean_sum: f64 =
            ds.points().iter().map(|p| (p.x + p.y) as f64).sum::<f64>() / ds.len() as f64;
        // Σ ≈ s·d/2 = 1000 for d = 2, s = 1000.
        assert!((mean_sum - 1000.0).abs() < 100.0, "mean sum {mean_sum}");
    }

    #[test]
    #[should_panic(expected = "build_2d requires dims == 2")]
    fn build_2d_rejects_higher_dims() {
        let mut s = spec(Distribution::Independent);
        s.dims = 3;
        let _ = s.build_2d();
    }
}
