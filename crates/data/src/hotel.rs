//! The paper's running example: eleven hotels with two attributes
//! (distance to downtown, price) — Figure 1 of the ICDE'18 paper.
//!
//! # Fidelity note
//!
//! The exact coordinates of the paper's figure are not recoverable from the
//! published text, so this module ships a *reconstruction* chosen to
//! reproduce the example's headline facts, each of which is asserted by a
//! test here and verified against brute-force oracles:
//!
//! - the skyline of the full dataset is `{p1, p6, p11}` (Figure 5, layer 1);
//! - for the query `q = (10, 80)`: the first-quadrant skyline is
//!   `{p3, p8, p10}` and the dynamic skyline is `{p6, p11}` (Figure 1);
//! - the dynamic skyline is a subset of the global skyline.

use skyline_core::geometry::{Dataset, Point, PointId};

/// The query hotel used throughout the paper: `q = (10, 80)`.
pub const QUERY: Point = Point::new(10, 80);

/// Hotel attribute rows `(distance to downtown, price)`; index `i` is the
/// paper's `p{i+1}`.
pub const HOTELS: [(i64, i64); 11] = [
    (1, 92),  // p1
    (3, 96),  // p2
    (12, 86), // p3
    (5, 94),  // p4
    (15, 85), // p5
    (8, 78),  // p6
    (16, 83), // p7
    (13, 83), // p8
    (6, 93),  // p9
    (21, 82), // p10
    (11, 9),  // p11
];

/// The hotel dataset.
pub fn dataset() -> Dataset {
    Dataset::from_coords(HOTELS).expect("hotel data is valid")
}

/// The paper's `p{k}` as a [`PointId`] (1-based, matching the paper).
///
/// # Panics
/// Panics unless `1 <= k <= 11`.
pub fn p(k: u32) -> PointId {
    assert!((1..=11).contains(&k), "the hotel example has p1..=p11");
    PointId(k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::query::{
        dynamic_skyline_naive, global_skyline_naive, quadrant_skyline_naive,
    };
    use skyline_core::skyline::sort_sweep::skyline_2d;

    #[test]
    fn dataset_skyline_is_p1_p6_p11() {
        assert_eq!(skyline_2d(&dataset()), vec![p(1), p(6), p(11)]);
    }

    #[test]
    fn first_quadrant_skyline_matches_figure_1() {
        assert_eq!(
            quadrant_skyline_naive(&dataset(), QUERY),
            vec![p(3), p(8), p(10)]
        );
    }

    #[test]
    fn dynamic_skyline_matches_figure_1() {
        assert_eq!(dynamic_skyline_naive(&dataset(), QUERY), vec![p(6), p(11)]);
    }

    #[test]
    fn dynamic_is_subset_of_global() {
        let ds = dataset();
        let dynamic = dynamic_skyline_naive(&ds, QUERY);
        let global = global_skyline_naive(&ds, QUERY);
        assert!(dynamic.iter().all(|id| global.contains(id)));
    }

    #[test]
    fn point_id_helper() {
        assert_eq!(p(1), PointId(0));
        assert_eq!(p(11), PointId(10));
        assert_eq!(dataset().point(p(6)), Point::new(8, 78));
    }

    #[test]
    #[should_panic(expected = "p1..=p11")]
    fn p_rejects_out_of_range() {
        let _ = p(12);
    }
}
