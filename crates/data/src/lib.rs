//! # skyline-data
//!
//! Datasets for the skyline-diagram workspace:
//!
//! - [`generators`]: the Börzsönyi-style correlated / independent /
//!   anti-correlated synthetic generators used by every experiment;
//! - [`hotel`]: the paper's Figure-1 running example (a verified
//!   reconstruction);
//! - [`nba`]: an NBA-box-score-like synthetic stand-in for the evaluation's
//!   real dataset (see DESIGN.md for the substitution rationale);
//! - [`csv`]: minimal CSV import/export;
//! - [`extra`]: Zipf-skewed and clustered generators;
//! - [`stats`]: dataset profiling (skyline size, layers, dominance
//!   density, correlation);
//! - [`workloads`]: query-point generators (uniform, data-local, random
//!   walk) for benchmarking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod extra;
pub mod generators;
pub mod hotel;
pub mod nba;
pub mod stats;
pub mod workloads;

pub use generators::{DatasetSpec, Distribution};
