//! Synthetic stand-in for the "real dataset" of the paper's evaluation.
//!
//! The ICDE'18 evaluation uses real datasets (this research group's papers
//! conventionally use NBA player season statistics). No real data can be
//! bundled here, so this module generates an **NBA-box-score-like** table
//! with the properties that actually matter to the experiments:
//!
//! - small bounded integer domains (points / rebounds / assists per game,
//!   roughly `0..40`, `0..20`, `0..15`), so the `min(s², n²)` cell-count
//!   saturation the paper discusses is exercised;
//! - mild positive correlation between attributes (good players are good at
//!   several things) with heavy-tailed stars, so skylines are small but not
//!   degenerate.
//!
//! Values are produced by a seeded latent-skill model: each player has a
//! skill `z`; attributes are independent noisy monotone functions of `z`.
//! Skylines are *minimization* skylines in this workspace, so attributes are
//! stored inverted (`max - value`): a dominating player is one with higher
//! raw stats, matching how skyline papers query NBA data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_core::geometry::{Coord, Dataset, DatasetD, PointD};

/// Per-attribute raw maxima: points, rebounds, assists per game.
const MAXES: [Coord; 3] = [40, 20, 15];

/// Generates an NBA-like planar dataset (points & rebounds), inverted for
/// minimization.
pub fn players_2d(n: usize, seed: u64) -> Dataset {
    let rows = rows(n, 2, seed);
    Dataset::from_coords(rows.into_iter().map(|r| (r[0], r[1]))).expect("generator output is valid")
}

/// Generates an NBA-like d-dimensional dataset (`2 <= dims <= 3`), inverted
/// for minimization.
pub fn players_d(n: usize, dims: usize, seed: u64) -> DatasetD {
    DatasetD::new(rows(n, dims, seed).into_iter().map(PointD::new).collect())
        .expect("generator output is valid")
}

fn rows(n: usize, dims: usize, seed: u64) -> Vec<Vec<Coord>> {
    assert!(n > 0, "need at least one player");
    assert!((2..=3).contains(&dims), "NBA stand-in has 3 attributes");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Latent skill: squaring a uniform skews toward role players
            // with a heavy star tail, like real per-game distributions.
            let z = rng.gen::<f64>();
            let skill = z * z;
            (0..dims)
                .map(|k| {
                    let noise = rng.gen::<f64>() * 0.4 - 0.2;
                    let frac = (skill * 0.9 + noise).clamp(0.0, 1.0);
                    let raw = (frac * MAXES[k] as f64).round() as Coord;
                    MAXES[k] - raw // invert: smaller = better player
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::skyline::sort_sweep::skyline_2d;

    #[test]
    fn deterministic() {
        assert_eq!(players_2d(200, 1), players_2d(200, 1));
        assert_ne!(players_2d(200, 1), players_2d(200, 2));
    }

    #[test]
    fn values_in_domain() {
        let ds = players_d(300, 3, 5);
        for p in ds.points() {
            for (k, &c) in p.coords().iter().enumerate() {
                assert!((0..=MAXES[k]).contains(&c));
            }
        }
    }

    #[test]
    fn small_domain_forces_ties() {
        // With 300 players over a domain of ~41 values, distinct-value
        // compression must kick in: far fewer grid lines than points.
        let ds = players_2d(300, 3);
        let grid = skyline_core::geometry::CellGrid::new(&ds);
        assert!(grid.nx() < 300);
        assert!(grid.ny() < 300);
    }

    #[test]
    fn skyline_is_small_but_not_degenerate() {
        let sky = skyline_2d(&players_2d(500, 11));
        assert!(!sky.is_empty());
        assert!(sky.len() <= 30, "skyline unexpectedly large: {}", sky.len());
    }

    #[test]
    fn correlation_is_positive() {
        let ds = players_2d(1000, 9);
        let n = ds.len() as f64;
        let (mx, my) = ds.points().iter().fold((0.0, 0.0), |(ax, ay), p| {
            (ax + p.x as f64 / n, ay + p.y as f64 / n)
        });
        let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
        for p in ds.points() {
            let (dx, dy) = (p.x as f64 - mx, p.y as f64 - my);
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.5, "correlation {r} too weak for an NBA-like table");
    }
}
