//! Dataset profiling: the structural quantities that predict diagram size
//! and construction cost (skyline size, layer count, dominance density,
//! attribute correlation). Used by the HTML report and the experiments
//! harness to characterize inputs next to their measurements.

use skyline_core::dominance::dominates;
use skyline_core::geometry::{CellGrid, Dataset};
use skyline_core::skyline::layers::layers_2d;
use skyline_core::skyline::sort_sweep::skyline_2d;

/// Structural profile of a planar dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Number of points.
    pub n: usize,
    /// Distinct x values (vertical grid lines).
    pub distinct_x: usize,
    /// Distinct y values.
    pub distinct_y: usize,
    /// Skyline size (minimization minima).
    pub skyline_size: usize,
    /// Number of skyline layers (onion depth).
    pub layer_count: usize,
    /// Fraction of ordered pairs in a dominance relation, in `[0, 1]`:
    /// ~0.25 for independent data, higher for correlated, lower for
    /// anti-correlated.
    pub dominance_density: f64,
    /// Pearson correlation of the two attributes, in `[-1, 1]`.
    pub correlation: f64,
}

impl DatasetProfile {
    /// Computes the profile; `O(n²)` for the dominance density.
    pub fn new(dataset: &Dataset) -> Self {
        let n = dataset.len();
        let grid = CellGrid::new(dataset);
        let skyline_size = skyline_2d(dataset).len();
        let layer_count = layers_2d(dataset).len();

        let mut dominated_pairs = 0usize;
        for (_, a) in dataset.iter() {
            for (_, b) in dataset.iter() {
                if dominates(a, b) {
                    dominated_pairs += 1;
                }
            }
        }
        let ordered_pairs = n * n.saturating_sub(1);
        let dominance_density = if ordered_pairs == 0 {
            0.0
        } else {
            dominated_pairs as f64 / ordered_pairs as f64
        };

        DatasetProfile {
            n,
            distinct_x: grid.nx() as usize,
            distinct_y: grid.ny() as usize,
            skyline_size,
            layer_count,
            dominance_density,
            correlation: correlation(dataset),
        }
    }
}

/// Pearson correlation of the two attributes; 0 for degenerate variance.
pub fn correlation(dataset: &Dataset) -> f64 {
    let n = dataset.len() as f64;
    let (mx, my) = dataset.points().iter().fold((0.0, 0.0), |(ax, ay), p| {
        (ax + p.x as f64 / n, ay + p.y as f64 / n)
    });
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for p in dataset.points() {
        let (dx, dy) = (p.x as f64 - mx, p.y as f64 - my);
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetSpec, Distribution};

    fn spec(distribution: Distribution) -> Dataset {
        DatasetSpec {
            n: 400,
            dims: 2,
            domain: 1000,
            distribution,
            seed: 11,
        }
        .build_2d()
    }

    #[test]
    fn correlation_signs_match_distributions() {
        let corr = DatasetProfile::new(&spec(Distribution::Correlated));
        let inde = DatasetProfile::new(&spec(Distribution::Independent));
        let anti = DatasetProfile::new(&spec(Distribution::Anticorrelated));
        assert!(corr.correlation > 0.8, "{}", corr.correlation);
        assert!(inde.correlation.abs() < 0.2, "{}", inde.correlation);
        assert!(anti.correlation < -0.8, "{}", anti.correlation);
    }

    #[test]
    fn dominance_density_ordering() {
        let corr = DatasetProfile::new(&spec(Distribution::Correlated));
        let inde = DatasetProfile::new(&spec(Distribution::Independent));
        let anti = DatasetProfile::new(&spec(Distribution::Anticorrelated));
        assert!(corr.dominance_density > inde.dominance_density);
        assert!(inde.dominance_density > anti.dominance_density);
        // Independent data: a point dominates another with probability 1/4
        // (both coordinates smaller), modulo ties.
        assert!((inde.dominance_density - 0.25).abs() < 0.05);
    }

    #[test]
    fn skyline_and_layers_are_consistent() {
        let p = DatasetProfile::new(&spec(Distribution::Independent));
        assert!(p.skyline_size >= 1);
        assert!(p.layer_count >= p.skyline_size.min(2));
        assert!(p.layer_count <= p.n);
        assert_eq!(p.n, 400);
        assert!(p.distinct_x <= 400);
    }

    #[test]
    fn degenerate_datasets() {
        let single = Dataset::from_coords([(5, 5)]).unwrap();
        let p = DatasetProfile::new(&single);
        assert_eq!(p.dominance_density, 0.0);
        assert_eq!(p.correlation, 0.0);
        assert_eq!(p.skyline_size, 1);
        assert_eq!(p.layer_count, 1);

        let identical = Dataset::from_coords(vec![(3, 3); 4]).unwrap();
        let p = DatasetProfile::new(&identical);
        assert_eq!(p.dominance_density, 0.0);
        assert_eq!(p.skyline_size, 4);
        assert_eq!(p.layer_count, 1);
    }

    #[test]
    fn chain_has_full_density() {
        let chain = Dataset::from_coords([(0, 0), (1, 1), (2, 2)]).unwrap();
        let p = DatasetProfile::new(&chain);
        // 3 of 6 ordered pairs dominate.
        assert!((p.dominance_density - 0.5).abs() < 1e-12);
        assert_eq!(p.layer_count, 3);
    }
}
