//! Query-workload generators for benchmarking: where the *data*
//! generators shape the seeds, these shape the **query points**. Query
//! locality matters for diagrams — uniform queries mostly land in large
//! boring polyominoes, while data-correlated queries exercise the dense
//! regions near the staircases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_core::geometry::{Coord, Dataset, Point};

/// Uniform queries over `[lo, hi)²`.
pub fn uniform(n: usize, lo: Coord, hi: Coord, seed: u64) -> Vec<Point> {
    assert!(hi > lo, "empty query window");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi)))
        .collect()
}

/// Queries clustered around the dataset's points (each query = a random
/// seed point plus bounded integer jitter) — the "customers shop near
/// real products" workload that stresses small polyominoes.
pub fn near_data(dataset: &Dataset, n: usize, jitter: Coord, seed: u64) -> Vec<Point> {
    assert!(jitter >= 0, "jitter must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = dataset.points()[rng.gen_range(0..dataset.len())];
            Point::new(
                base.x + rng.gen_range(-jitter..=jitter),
                base.y + rng.gen_range(-jitter..=jitter),
            )
        })
        .collect()
}

/// Queries along a random walk (each step bounded) — the moving-client
/// workload behind the safe-zone application: consecutive queries usually
/// stay within one polyomino.
pub fn random_walk(start: Point, n: usize, step: Coord, seed: u64) -> Vec<Point> {
    assert!(step > 0, "walk needs a positive step bound");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = start;
    (0..n)
        .map(|_| {
            at = Point::new(
                at.x + rng.gen_range(-step..=step),
                at.y + rng.gen_range(-step..=step),
            );
            at
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::quadrant::QuadrantEngine;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(50, 0, 100, 1), uniform(50, 0, 100, 1));
        let ds = crate::hotel::dataset();
        assert_eq!(near_data(&ds, 50, 3, 2), near_data(&ds, 50, 3, 2));
        assert_eq!(
            random_walk(Point::new(0, 0), 50, 5, 3),
            random_walk(Point::new(0, 0), 50, 5, 3)
        );
    }

    #[test]
    fn bounds_hold() {
        for q in uniform(200, -5, 7, 9) {
            assert!((-5..7).contains(&q.x) && (-5..7).contains(&q.y));
        }
        let ds = crate::hotel::dataset();
        for q in near_data(&ds, 200, 2, 4) {
            assert!(ds
                .points()
                .iter()
                .any(|p| (p.x - q.x).abs() <= 2 && (p.y - q.y).abs() <= 2));
        }
        let walk = random_walk(Point::new(10, 10), 100, 3, 5);
        for w in walk.windows(2) {
            assert!((w[0].x - w[1].x).abs() <= 3 && (w[0].y - w[1].y).abs() <= 3);
        }
    }

    #[test]
    fn locality_shows_in_polyomino_hits() {
        // A random walk revisits the same polyomino far more often than
        // uniform queries do — the effect safe zones exploit.
        let ds = crate::generators::DatasetSpec {
            n: 100,
            dims: 2,
            domain: 1000,
            distribution: crate::Distribution::Independent,
            seed: 6,
        }
        .build_2d();
        let diagram = QuadrantEngine::Sweeping.build(&ds);
        let merged = skyline_core::diagram::merge::merge(&diagram);
        let region_of = |q: Point| {
            let cell = diagram.grid().cell_of(q);
            merged.cell_to_polyomino()[diagram.grid().linear_index(cell)]
        };
        let changes = |qs: &[Point]| {
            qs.windows(2)
                .filter(|w| region_of(w[0]) != region_of(w[1]))
                .count()
        };
        let walk = random_walk(Point::new(500, 500), 400, 4, 7);
        let scatter = uniform(400, 0, 1000, 8);
        assert!(
            changes(&walk) * 2 < changes(&scatter),
            "walk changes {} vs scatter {}",
            changes(&walk),
            changes(&scatter)
        );
    }
}
