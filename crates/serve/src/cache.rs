//! The sharded, provably exact result cache attached to each snapshot.
//!
//! The skyline diagram guarantees that every query point inside one cell
//! (and, for quadrant queries, anywhere inside one *polyomino*) has the
//! identical result. A cache keyed on the cell/polyomino id therefore can
//! never serve a wrong answer: a hit returns exactly what the lookup would
//! have computed, and the only failure mode is a *miss* (recompute). Two
//! further properties keep the cache exact under concurrency:
//!
//! * it lives **inside one snapshot** — entries can never leak across
//!   epochs, because a new epoch is a new (empty) cache;
//! * slots are write-once [`skyline_core::sync::OnceLock`] cells —
//!   direct-mapped, first write
//!   wins, never evicted, never torn. Losing a publication race only drops
//!   a duplicate of the identical value.
//!
//! The slot array is a fixed power of two, so memory stays bounded no
//! matter how many distinct keys a workload touches; a key whose slot was
//! claimed by a different key simply stays a miss. Per-instance hit/miss
//! counters are [`telemetry::CounterCell`]s (always-on relaxed atomics:
//! per-snapshot cache stats are product data, `serve-bench` prints them),
//! and every lookup also feeds the process-wide telemetry registry under
//! `serve.cache.hit` / `serve.cache.miss` / `serve.cache.fill`.
//!
//! This file is read-path code: the `no-lock-read-path` lint keeps
//! `Mutex`/`RwLock` out of it.

use skyline_core::sync::{Arc, OnceLock};

use skyline_core::maintained::Handle;
use skyline_core::telemetry;

/// A cached answer: the sorted handle list shared by every query point that
/// maps to the entry's key.
type Entry = (u64, Arc<[Handle]>);

/// Hit/miss counters of one cache (or the sum over several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a populated slot with a matching key.
    pub hits: u64,
    /// Lookups that recomputed (empty slot, or slot claimed by another key).
    pub misses: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating per-semantics caches.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }

    /// Total lookups that went through the cache.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A direct-mapped, write-once result cache. See the module docs for the
/// exactness argument.
#[derive(Debug)]
pub struct ResultCache {
    /// Power-of-two slot array; slot of `key` is `key & mask`.
    slots: Box<[OnceLock<Entry>]>,
    mask: u64,
    hits: telemetry::CounterCell,
    misses: telemetry::CounterCell,
}

impl ResultCache {
    /// Estimated heap bytes: the slot array plus every filled entry's
    /// shared handle list (each counted once; reader clones share the
    /// same buffer). The per-entry constant covers the `Arc` header.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.slots.len() * std::mem::size_of::<OnceLock<Entry>>();
        for slot in self.slots.iter() {
            if let Some((_, value)) = slot.get() {
                bytes +=
                    std::mem::size_of::<usize>() * 2 + value.len() * std::mem::size_of::<Handle>();
            }
        }
        bytes
    }

    /// A cache with at least `min_slots` slots (rounded up to a power of
    /// two, minimum 1).
    pub fn new(min_slots: usize) -> Self {
        let slots = min_slots.max(1).next_power_of_two();
        ResultCache {
            slots: (0..slots).map(|_| OnceLock::new()).collect(),
            mask: (slots as u64) - 1,
            hits: telemetry::CounterCell::new(),
            misses: telemetry::CounterCell::new(),
        }
    }

    /// Returns the cached answer for `key`, or computes, publishes, and
    /// returns it. Lock-free: a hit is one `OnceLock` read; a miss runs
    /// `compute` on the caller and then attempts a write-once publication
    /// (losing the race to an identical concurrent value is harmless).
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<[Handle]>,
    ) -> Arc<[Handle]> {
        let slot = &self.slots[(key & self.mask) as usize];
        if let Some((stored_key, value)) = slot.get() {
            if *stored_key == key {
                self.hits.add(1);
                skyline_core::counter!("serve.cache.hit").add(1);
                return Arc::clone(value);
            }
            // Direct-mapped collision: this key permanently misses.
            self.misses.add(1);
            skyline_core::counter!("serve.cache.miss").add(1);
            return compute();
        }
        self.misses.add(1);
        skyline_core::counter!("serve.cache.miss").add(1);
        skyline_core::counter!("serve.cache.fill").add(1);
        let _mem =
            skyline_core::telemetry::mem::phase(skyline_core::telemetry::mem::MemPhase::CacheFill);
        let value = compute();
        // First write wins; a racing writer computed the identical value
        // for the identical key, so dropping ours changes nothing.
        let _ = slot.set((key, Arc::clone(&value)));
        value
    }

    /// Counters so far. Relaxed reads: exact totals once readers quiesce,
    /// monotone under concurrency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(ids: &[u64]) -> Arc<[Handle]> {
        ids.iter().map(|&i| Handle(i)).collect()
    }

    #[test]
    fn hit_after_miss_returns_identical_value() {
        let cache = ResultCache::new(8);
        let first = cache.get_or_compute(3, || value(&[1, 2]));
        let second = cache.get_or_compute(3, || unreachable!("must be a hit"));
        assert_eq!(first, second);
        assert!(Arc::ptr_eq(&first, &second), "hits share the stored Arc");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn colliding_keys_stay_correct_as_misses() {
        let cache = ResultCache::new(1); // every key collides
        assert_eq!(cache.slot_count(), 1);
        let a = cache.get_or_compute(0, || value(&[7]));
        let b = cache.get_or_compute(1, || value(&[9]));
        let b2 = cache.get_or_compute(1, || value(&[9]));
        assert_eq!(a.as_ref(), &[Handle(7)]);
        assert_eq!(b, b2);
        assert_eq!(b.as_ref(), &[Handle(9)]);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "collisions never serve the wrong entry");
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn slot_count_rounds_up() {
        assert_eq!(ResultCache::new(0).slot_count(), 1);
        assert_eq!(ResultCache::new(5).slot_count(), 8);
        assert_eq!(ResultCache::new(64).slot_count(), 64);
    }

    #[test]
    fn stats_merge() {
        let a = CacheStats { hits: 2, misses: 3 };
        let b = CacheStats { hits: 5, misses: 7 };
        let m = a.merged(b);
        assert_eq!(
            m,
            CacheStats {
                hits: 7,
                misses: 10
            }
        );
        assert_eq!(m.lookups(), 17);
    }

    #[test]
    fn concurrent_population_is_consistent() {
        use skyline_core::parallel::{self, ParallelConfig};
        let cache = ResultCache::new(16);
        let answers = parallel::map_indexed(&ParallelConfig::with_threads(4), 64, |i| {
            let key = (i % 8) as u64;
            cache.get_or_compute(key, || value(&[key, key + 100]))
        });
        for (i, got) in answers.iter().enumerate() {
            let key = (i % 8) as u64;
            assert_eq!(got.as_ref(), &[Handle(key), Handle(key + 100)]);
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 64);
        assert!(stats.misses >= 8, "each key misses at least once");
    }
}
