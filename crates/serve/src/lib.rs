//! Concurrent snapshot-serving layer for skyline diagrams.
//!
//! The skyline diagram is a *precomputed* structure — the paper's whole
//! point is that queries become point locations. This crate supplies the
//! missing serving story: keep answering quadrant/global/dynamic/safe-zone
//! /trace requests from any number of threads while the underlying point
//! set changes.
//!
//! * [`server::SkylineServer`] owns the mutable state and publishes
//!   immutable [`snapshot::Snapshot`]s through an epoch chain
//!   ([`skyline_core::epoch`]): writers serialize on one mutex, readers
//!   are lock-free and always answer from one consistent epoch.
//! * [`cache::ResultCache`] memoizes answers per snapshot, keyed by
//!   cell/polyomino id — provably exact, never evicting, never wrong.
//! * [`workload`] drives deterministic closed-loop benchmarks whose
//!   checksums are bit-identical across thread counts and cache settings;
//!   the differential stress harness (`tests/stress_diff.rs`) checks every
//!   concurrent answer against a fresh single-threaded recompute.
//! * [`openloop`] drives the same queries on a fixed-rate arrival
//!   schedule, measuring latency from *scheduled* arrival — the
//!   coordinated-omission-safe view of the tail — into per-family log2
//!   histograms, while folding the identical checksum.
//! * Snapshots persist: [`Snapshot::to_container`] dumps a published epoch
//!   into a versioned snapshot container ([`skyline_core::container`]) and
//!   [`SkylineServer::from_container`] cold-starts a server from those
//!   bytes without rebuilding any diagram (`skydiag save` / `skydiag
//!   load`, experiment E14).
//!
//! ```
//! use skyline_core::geometry::{Dataset, Point};
//! use skyline_serve::{ServerOptions, SkylineServer};
//!
//! let ds = Dataset::from_coords([(2, 9), (5, 4), (9, 1), (4, 6)])?;
//! let (server, _handles) = SkylineServer::with_dataset(&ds, ServerOptions::default());
//!
//! let mut reader = server.reader();           // lock-free after this line
//! let snap = reader.snapshot();               // pin the current epoch
//! let before = snap.quadrant(Point::new(3, 3));
//!
//! server.insert(Point::new(4, 4));            // buffered...
//! server.refresh();                           // ...published
//! assert_eq!(snap.quadrant(Point::new(3, 3)), before); // pinned epoch
//! assert_ne!(reader.snapshot().quadrant(Point::new(3, 3)), before);
//! # Ok::<(), skyline_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod openloop;
pub mod server;
pub mod snapshot;
pub mod workload;

pub use cache::{CacheStats, ResultCache};
pub use openloop::{run_open_loop, LatencyHistogram, OpenLoopReport, OpenLoopSpec, FAMILY_NAMES};
pub use server::{ServerOptions, SkylineServer, SnapshotReader};
pub use snapshot::Snapshot;
pub use workload::{QueryMix, WorkloadReport, WorkloadSpec};
