//! An open-loop workload driver for [`SkylineServer`]: arrivals are
//! *scheduled* at a fixed rate and latency is measured from each query's
//! scheduled arrival, not from when the server got around to starting it.
//!
//! # Why open-loop
//!
//! The closed-loop driver in [`crate::workload`] issues the next query
//! only after the previous one finishes, so a server stall silently
//! *reschedules* the queries that would have arrived during the stall —
//! the classic coordinated-omission blind spot: mean and even p99 look
//! healthy while real clients were queueing. Here the arrival schedule is
//! fixed up front (`k`-th arrival at `start + k/rate`), a lane that falls
//! behind keeps issuing without waiting, and every latency sample is
//! `completion − scheduled_arrival`, so queue time accrued behind a stall
//! lands in the histograms where a real client would feel it.
//!
//! # Determinism contract
//!
//! Latency *histograms* are timing and therefore machine-dependent, but
//! the query *answers* fold into the same XOR checksum discipline as the
//! closed-loop driver: query `k` is generated from a counter-based RNG
//! keyed by `(seed, k)` regardless of which lane serves it, the run
//! applies no updates (refresh barriers pass through but publish
//! nothing), and XOR is order-independent. The open-loop checksum is
//! therefore bit-identical across lane counts, thread counts, and
//! arbitrarily severe stalls — the differential test for coordinated
//! omission relies on exactly this: same answers, very different tails.

use skyline_core::parallel::{self, ParallelConfig};
use skyline_core::telemetry::{bucket_index, now_ns, spin_until, HISTOGRAM_BUCKETS};

use crate::server::SkylineServer;
use crate::workload::{digest_query, pick_kind, point_in_domain, splitmix, QueryMix};

/// Query-family names, indexed by the query kind the mix draws
/// (`0 = quadrant` … `4 = trace`). [`OpenLoopReport::families`] is in this
/// order.
pub const FAMILY_NAMES: [&str; 5] = ["quadrant", "global", "dynamic", "safe_zone", "trace"];

/// Shape of one open-loop run. Unlike [`crate::workload::WorkloadSpec`]
/// this fixes total *scheduled work over time*, not work per reader: the
/// run always issues `arrivals` queries on a schedule of `rate` per
/// second, however long the server takes to serve them.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopSpec {
    /// Lane fan-out: `0` runs one lane inline on the caller (the
    /// sequential reference), `k >= 1` fans `k` lanes out on the scoped
    /// pool. Arrival `k` is served by lane `k % lanes`; the schedule and
    /// the checksum do not depend on the lane count.
    pub lanes: usize,
    /// Scheduled arrivals per second (must be positive).
    pub rate: u64,
    /// Total scheduled arrivals.
    pub arrivals: u64,
    /// Query coordinates are drawn from `[0, domain)`.
    pub domain: i64,
    /// Master seed; every random choice derives from it by counter.
    pub seed: u64,
    /// Request-kind weights.
    pub mix: QueryMix,
    /// Every `refresh_every`-th arrival (by global index, `0` = never) the
    /// owning lane runs a [`SkylineServer::refresh`] barrier first — the
    /// path the injected-stall hook and any organic rebuild latency live
    /// on. With no buffered updates the barrier publishes nothing, so the
    /// checksum is unaffected.
    pub refresh_every: u64,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            lanes: 0,
            rate: 5_000,
            arrivals: 2_000,
            domain: 1 << 16,
            seed: 0x0be7_0001,
            mix: QueryMix::default(),
            refresh_every: 0,
        }
    }
}

impl OpenLoopSpec {
    /// Length of the arrival schedule in milliseconds (last arrival's
    /// offset from the first): `(arrivals - 1) / rate`, as wall time.
    pub fn schedule_ms(&self) -> f64 {
        if self.rate == 0 {
            return 0.0;
        }
        (self.arrivals.saturating_sub(1) as f64) * 1_000.0 / (self.rate as f64)
    }
}

/// A 65-bucket log2 latency histogram as plain product data. This is the
/// open-loop driver's *result*, not a telemetry probe: it shares the
/// bucket layout of `skyline_core::telemetry` ([`bucket_index`], which is
/// available with the feature off) but lives in the report, so percentile
/// extraction works in `--no-default-features` builds too.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples in nanoseconds (wrapping).
    pub sum_ns: u64,
    /// Largest recorded sample in nanoseconds.
    pub max_ns: u64,
    /// Log2 bucket counts; bucket `i` as in [`bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.wrapping_add(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
        self.buckets[bucket_index(latency_ns)] += 1;
    }

    /// Adds `other`'s samples into this histogram (bucket-wise, so the
    /// merge is order-independent across lanes).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.wrapping_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// What one open-loop run did and observed.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Queries served (equals the spec's `arrivals`).
    pub arrivals: u64,
    /// Order-independent digest of every answer; identical across lane
    /// counts, thread counts, and stalls for the same spec and content.
    pub checksum: u64,
    /// Wall-clock time from the first scheduled arrival to the last
    /// completion. At least [`OpenLoopSpec::schedule_ms`] by construction.
    pub elapsed_ms: f64,
    /// Refresh barriers the lanes ran (per `refresh_every`).
    pub refreshes: u64,
    /// Per-family latency histograms in [`FAMILY_NAMES`] order, including
    /// families the mix never drew (empty histograms).
    pub families: Vec<(&'static str, LatencyHistogram)>,
    /// All families merged.
    pub overall: LatencyHistogram,
}

impl OpenLoopReport {
    /// Served arrivals per second over the whole run.
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.arrivals as f64 * 1_000.0 / self.elapsed_ms
        }
    }
}

/// One lane's fold: its digest share and per-family histograms.
struct LaneOutcome {
    digest: u64,
    refreshes: u64,
    families: [LatencyHistogram; 5],
}

/// The [`skyline_core::telemetry::now_ns`] instant arrival `k` is
/// scheduled at, on a schedule starting at `start_ns`.
fn scheduled_ns(start_ns: u64, rate: u64, k: u64) -> u64 {
    let offset = (u128::from(k) * 1_000_000_000u128) / u128::from(rate.max(1));
    start_ns.saturating_add(u64::try_from(offset).unwrap_or(u64::MAX))
}

fn lane_run(
    server: &SkylineServer,
    spec: &OpenLoopSpec,
    start_ns: u64,
    lane: usize,
) -> LaneOutcome {
    let mut lane_span = skyline_core::span!("openloop.lane", lane as u64);
    let mut families: [LatencyHistogram; 5] = std::array::from_fn(|_| LatencyHistogram::new());
    let mut digest = 0u64;
    let mut refreshes = 0u64;
    let mut handled = 0u64;
    let lane_count = spec.lanes.max(1) as u64;
    // One pinned snapshot per lane: the run applies no updates, so every
    // epoch a refresh barrier could surface has identical content.
    let snap = server.reader().snapshot();
    let mut k = lane as u64;
    while k < spec.arrivals {
        let sched = scheduled_ns(start_ns, spec.rate, k);
        // Open-loop: wait *only* if the schedule is ahead of us. A lane
        // running behind issues immediately and the backlog shows up as
        // latency, exactly as a queued client would experience it.
        spin_until(sched);
        if spec.refresh_every > 0 && k > 0 && k % spec.refresh_every == 0 {
            server.refresh();
            refreshes += 1;
        }
        let key = splitmix(spec.seed ^ 0x07e2_100b) ^ splitmix(k);
        let kind = pick_kind(&spec.mix, key);
        let q = point_in_domain(spec.domain, splitmix(key ^ 0xbeef));
        digest ^= digest_query(kind, q, &snap, spec.domain, key);
        // Coordinated-omission-safe: latency runs from the *scheduled*
        // arrival, so time spent queued behind a stall is charged here.
        families[kind as usize].record(now_ns().saturating_sub(sched));
        handled += 1;
        k += lane_count;
    }
    skyline_core::counter!("openloop.queries").add(handled);
    lane_span.set_payload(handled);
    LaneOutcome {
        digest,
        refreshes,
        families,
    }
}

/// Runs the open loop: `spec.arrivals` queries on a fixed-rate schedule,
/// fanned over `spec.lanes` pool lanes (arrival `k` → lane `k % lanes`).
/// Returns the merged per-family latency histograms and the XOR checksum.
///
/// On a host with fewer cores than lanes the pool caps its workers, so
/// trailing lanes start late and their samples absorb the full queue
/// delay — large, but *honest* open-loop figures (see the 1-core caveat
/// in EXPERIMENTS.md E13).
pub fn run_open_loop(server: &SkylineServer, spec: &OpenLoopSpec) -> OpenLoopReport {
    assert!(spec.rate > 0, "open-loop arrival rate must be positive");
    assert!(spec.mix.total() > 0, "query mix must have positive weight");
    let lane_count = spec.lanes.max(1);
    let cfg = ParallelConfig::with_threads(spec.lanes);
    let _run = skyline_core::span!("openloop.run", spec.arrivals);
    let start_ns = now_ns();
    let outcomes = parallel::map_indexed(&cfg, lane_count, |lane| {
        lane_run(server, spec, start_ns, lane)
    });
    let elapsed_ms = skyline_core::telemetry::ms_since(start_ns);
    let mut checksum = 0u64;
    let mut refreshes = 0u64;
    let mut merged: [LatencyHistogram; 5] = std::array::from_fn(|_| LatencyHistogram::new());
    for outcome in &outcomes {
        checksum ^= outcome.digest;
        refreshes += outcome.refreshes;
        for (into, from) in merged.iter_mut().zip(outcome.families.iter()) {
            into.merge(from);
        }
    }
    let mut overall = LatencyHistogram::new();
    for hist in &merged {
        overall.merge(hist);
    }
    let families = FAMILY_NAMES
        .iter()
        .zip(merged)
        .map(|(name, hist)| (*name, hist))
        .collect();
    OpenLoopReport {
        arrivals: spec.arrivals,
        checksum,
        elapsed_ms,
        refreshes,
        families,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerOptions, SkylineServer};
    use skyline_core::geometry::Dataset;

    fn server_with(n: i64) -> SkylineServer {
        let coords: Vec<(i64, i64)> = (0..n)
            .map(|i| {
                let r = splitmix(0x0be7 ^ (i as u64));
                ((r % 997) as i64 * 4, ((r >> 32) % 997) as i64 * 4)
            })
            .collect();
        let ds = Dataset::from_coords(coords).expect("generated coords are valid");
        SkylineServer::with_dataset(&ds, ServerOptions::default()).0
    }

    fn fast_spec() -> OpenLoopSpec {
        OpenLoopSpec {
            lanes: 0,
            rate: 200_000,
            arrivals: 400,
            domain: 4_000,
            seed: 7,
            mix: QueryMix::default(),
            refresh_every: 0,
        }
    }

    #[test]
    fn checksum_is_identical_across_lane_counts() {
        let server = server_with(50);
        let base = run_open_loop(&server, &fast_spec());
        assert_eq!(base.arrivals, 400);
        assert_eq!(base.overall.count, 400);
        for lanes in [1usize, 4] {
            let spec = OpenLoopSpec {
                lanes,
                ..fast_spec()
            };
            let report = run_open_loop(&server, &spec);
            assert_eq!(
                report.checksum, base.checksum,
                "lanes={lanes} must fold the same answers"
            );
            assert_eq!(report.overall.count, 400);
        }
    }

    #[test]
    fn family_histograms_partition_the_arrivals() {
        let server = server_with(50);
        let report = run_open_loop(&server, &fast_spec());
        let family_total: u64 = report.families.iter().map(|(_, h)| h.count).sum();
        assert_eq!(family_total, report.arrivals);
        assert_eq!(report.families.len(), FAMILY_NAMES.len());
        // The default mix draws no dynamic queries.
        let dynamic = report
            .families
            .iter()
            .find(|(name, _)| *name == "dynamic")
            .expect("every family has a histogram entry");
        assert_eq!(dynamic.1.count, 0);
        // Bucket counts agree with the sample count.
        let bucket_total: u64 = report.overall.buckets.iter().sum();
        assert_eq!(bucket_total, report.overall.count);
    }

    #[test]
    fn the_schedule_paces_the_run() {
        // 100 arrivals at 2000/s = a 49.5 ms schedule; the run cannot
        // finish faster than its own arrival schedule.
        let spec = OpenLoopSpec {
            rate: 2_000,
            arrivals: 100,
            ..fast_spec()
        };
        let server = server_with(20);
        let report = run_open_loop(&server, &spec);
        assert!(
            report.elapsed_ms >= spec.schedule_ms() * 0.95,
            "run ({:.1}ms) finished before its schedule ({:.1}ms)",
            report.elapsed_ms,
            spec.schedule_ms()
        );
        assert!(report.achieved_rate() > 0.0);
    }

    #[test]
    fn refresh_barriers_run_but_publish_nothing() {
        let spec = OpenLoopSpec {
            refresh_every: 50,
            ..fast_spec()
        };
        let server = server_with(20);
        let epoch_before = server.epoch();
        let report = run_open_loop(&server, &spec);
        assert_eq!(report.refreshes, 7, "arrivals 50,100,…,350 refresh");
        assert_eq!(server.epoch(), epoch_before, "no updates, no epochs");
        // Checksum unaffected by the barrier cadence.
        let no_refresh = run_open_loop(&server, &fast_spec());
        assert_eq!(report.checksum, no_refresh.checksum);
    }
}
