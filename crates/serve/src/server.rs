//! The writer side: [`SkylineServer`] accepts updates, rebuilds snapshots
//! on the scoped pool, and publishes them through an epoch chain.
//!
//! # Concurrency protocol
//!
//! All mutable state — the [`MaintainedIndex`] and the
//! [`EpochPublisher`] tail — lives behind **one** writer mutex. Writers
//! (insert/remove/refresh) serialize on it; publication itself is the
//! single `Arc` swap inside [`EpochPublisher::publish`]. Readers never
//! touch the mutex after construction: a [`SnapshotReader`] chases the
//! epoch chain lock-free, and every query runs against one immutable
//! [`Snapshot`]. The only reader/writer interaction is reader *creation*
//! (one brief lock to clone the current chain tail).
//!
//! # Update visibility
//!
//! Updates buffer in the maintained index and become visible to readers
//! only at publication: automatically once the buffer reaches
//! `rebuild_threshold`, or on an explicit [`SkylineServer::refresh`]
//! barrier. Until then, readers keep answering from the previous epoch —
//! always consistent, possibly behind. This is the serving analogue of the
//! maintained index's lazy-rebuild policy: queries never pay per-update
//! patch-up cost, and a burst of updates costs one rebuild.

// The write-side `Mutex` stays `std`: it guards the single-writer half
// (never the read path — see `no-lock-read-path`), so it is outside the
// interleaving checker's scope.
use skyline_core::sync::Arc;
use std::sync::Mutex;

use skyline_core::dynamic::DynamicEngine;
use skyline_core::epoch::{EpochPublisher, EpochReader};
use skyline_core::geometry::{Dataset, Point};
use skyline_core::index::SkylineIndexBuilder;
use skyline_core::maintained::{Handle, MaintainedIndex};
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;

use crate::snapshot::Snapshot;

/// Construction and policy knobs for [`SkylineServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Quadrant/global construction engine (default: sweeping).
    pub engine: QuadrantEngine,
    /// Dynamic construction engine (default: scanning).
    pub dynamic_engine: DynamicEngine,
    /// Also build the global diagram in every snapshot.
    pub with_global: bool,
    /// Also build the dynamic subcell diagram in every snapshot (expensive;
    /// intended for small datasets).
    pub with_dynamic: bool,
    /// Result-cache slots per semantics per snapshot; `0` disables caching.
    pub cache_slots: usize,
    /// Publish automatically once this many updates have buffered.
    pub rebuild_threshold: usize,
    /// Pool configuration for snapshot rebuilds (default: from the
    /// environment, see [`ParallelConfig::from_env`]).
    pub parallel: ParallelConfig,
    /// Deterministic stall injection on the refresh barrier, as
    /// `(nth, stall_ms)`: the `nth` call to [`SkylineServer::refresh`]
    /// (1-based) busy-waits `stall_ms` milliseconds on the telemetry clock
    /// before publishing, inside a `serve.refresh.injected_stall` span.
    /// `(0, _)` — the default — disables the hook. This exists for the
    /// coordinated-omission differential test and the CI anomaly-trigger
    /// job: the stall delays publication without touching buffered
    /// updates, so query digests are unaffected.
    pub injected_stall: (u64, u64),
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            engine: QuadrantEngine::Sweeping,
            dynamic_engine: DynamicEngine::Scanning,
            with_global: false,
            with_dynamic: false,
            cache_slots: 4096,
            rebuild_threshold: 32,
            parallel: ParallelConfig::from_env(),
            injected_stall: (0, 0),
        }
    }
}

/// Everything the writer mutates, behind one mutex.
#[derive(Debug)]
struct Writer {
    maintained: MaintainedIndex,
    publisher: EpochPublisher<Snapshot>,
    /// Updates buffered since the last publication. Tracked here rather
    /// than via [`MaintainedIndex::pending_updates`] because the server,
    /// not the index, decides when the next snapshot is built.
    dirty: usize,
    /// Total [`SkylineServer::refresh`] calls, for the injected-stall hook.
    refresh_calls: u64,
}

/// A concurrently readable, epoch-snapshotted skyline index. See the
/// module docs for the protocol.
#[derive(Debug)]
pub struct SkylineServer {
    options: ServerOptions,
    writer: Mutex<Writer>,
}

impl SkylineServer {
    /// An empty server at epoch 0 (every answer is empty until points are
    /// inserted and published).
    pub fn new(options: ServerOptions) -> Self {
        let mut maintained = MaintainedIndex::new(options.engine);
        // The server owns publication policy; the index must never rebuild
        // behind its back on the query path (it has no query path here
        // anyway, but keep the invariant explicit).
        maintained.rebuild_threshold = usize::MAX;
        SkylineServer {
            options,
            writer: Mutex::new(Writer {
                maintained,
                publisher: EpochPublisher::new(Snapshot::empty(0)),
                dirty: 0,
                refresh_calls: 0,
            }),
        }
    }

    /// A server pre-loaded with `dataset`, published once as epoch 1. The
    /// returned handles are in dataset order.
    pub fn with_dataset(dataset: &Dataset, options: ServerOptions) -> (Self, Vec<Handle>) {
        let server = Self::new(options);
        let handles = {
            let mut w = server.lock_writer();
            let handles: Vec<Handle> = dataset
                .points()
                .iter()
                .map(|p| w.maintained.insert(*p))
                .collect();
            w.dirty += handles.len();
            server.publish(&mut w);
            handles
        };
        (server, handles)
    }

    /// Cold-starts a server from a snapshot container
    /// ([`skyline_core::container`]), published once as epoch 1 **without
    /// rebuilding any diagram** — the decoded index is published as-is, so
    /// start-up cost is the container's validated copy instead of the
    /// `O(n²)` construction (experiment E14 measures the gap). The maintained
    /// index adopts the container's handle table (or dataset-ordered handles
    /// `0..n` when the container carries none), so later inserts/removes and
    /// the rebuilds they trigger behave exactly as on a warm server. The
    /// returned handles are in dataset order.
    pub fn from_container(
        bytes: &[u8],
        options: ServerOptions,
    ) -> Result<(Self, Vec<Handle>), skyline_core::container::Error> {
        let _cold = skyline_core::span!("serve.cold_start", bytes.len() as u64);
        let loaded = skyline_core::container::decode_index(bytes)?;
        let handles = if loaded.handles.is_empty() {
            (0..loaded.index.dataset().len() as u64)
                .map(Handle)
                .collect()
        } else {
            loaded.handles
        };
        let pairs: Vec<(Handle, Point)> = handles
            .iter()
            .copied()
            .zip(loaded.index.dataset().points().iter().copied())
            .collect();
        let mut maintained = MaintainedIndex::restore(options.engine, pairs)
            .map_err(skyline_core::container::Error::Invalid)?;
        maintained.rebuild_threshold = usize::MAX;
        let server = SkylineServer {
            options,
            writer: Mutex::new(Writer {
                maintained,
                publisher: EpochPublisher::new(Snapshot::empty(0)),
                dirty: 0,
                refresh_calls: 0,
            }),
        };
        {
            let mut w = server.lock_writer();
            let snapshot = Snapshot::new(1, loaded.index, handles.clone(), options.cache_slots);
            let published = w.publisher.publish(snapshot);
            debug_assert_eq!(published, 1);
        }
        Ok((server, handles))
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Writer> {
        self.writer
            .lock()
            .expect("a writer panicked mid-update; the server state is unrecoverable")
    }

    /// Rebuilds and publishes the next epoch from the writer's current
    /// point set. Caller holds the writer lock.
    fn publish(&self, w: &mut Writer) -> u64 {
        let rebuild_start = skyline_core::telemetry::now_ns();
        let _rebuild = skyline_core::span!("serve.rebuild", w.maintained.len() as u64);
        let _mem = skyline_core::telemetry::mem::phase(
            skyline_core::telemetry::mem::MemPhase::ServeRebuild,
        );
        w.maintained.rebuild_with(&self.options.parallel);
        let next_epoch = w.publisher.epoch() + 1;
        let snapshot = match w.maintained.built() {
            None => Snapshot::empty(next_epoch),
            Some((diagram, handles)) => {
                let dataset =
                    Dataset::from_coords(w.maintained.live_points().map(|(_, p)| (p.x, p.y)))
                        .expect("live points were valid when inserted");
                let index = SkylineIndexBuilder::default()
                    .engine(self.options.engine)
                    .dynamic_engine(self.options.dynamic_engine)
                    .with_global(self.options.with_global)
                    .with_dynamic(self.options.with_dynamic)
                    .assemble(&dataset, diagram.clone(), &self.options.parallel);
                Snapshot::new(
                    next_epoch,
                    index,
                    handles.to_vec(),
                    self.options.cache_slots,
                )
            }
        };
        let published = {
            let _publish = skyline_core::span!("serve.publish", next_epoch);
            w.publisher.publish(snapshot)
        };
        // Microsecond buckets: rebuild latencies span ~1e2..1e7 ns, and the
        // log2 histogram resolves that range well in µs.
        skyline_core::histogram!("serve.rebuild_us")
            .record(skyline_core::telemetry::now_ns().saturating_sub(rebuild_start) / 1_000);
        debug_assert_eq!(published, next_epoch);
        w.dirty = 0;
        published
    }

    /// Publishes if updates are buffered. Caller holds the writer lock.
    fn publish_if_dirty(&self, w: &mut Writer) -> u64 {
        if w.dirty > 0 {
            self.publish(w)
        } else {
            w.publisher.epoch()
        }
    }

    /// Inserts a point. Invisible to readers until the next publication
    /// (automatic at `rebuild_threshold` buffered updates, or via
    /// [`SkylineServer::refresh`]).
    pub fn insert(&self, p: Point) -> Handle {
        let mut w = self.lock_writer();
        let handle = w.maintained.insert(p);
        w.dirty += 1;
        if w.dirty >= self.options.rebuild_threshold {
            self.publish(&mut w);
        }
        handle
    }

    /// Removes a point by handle; returns false if unknown. Same visibility
    /// rules as [`SkylineServer::insert`].
    pub fn remove(&self, handle: Handle) -> bool {
        let mut w = self.lock_writer();
        if !w.maintained.remove(handle) {
            return false;
        }
        w.dirty += 1;
        if w.dirty >= self.options.rebuild_threshold {
            self.publish(&mut w);
        }
        true
    }

    /// Publication barrier: after this returns, every update accepted
    /// before the call is visible to any reader that refreshes. Returns the
    /// current epoch (unchanged if nothing was buffered).
    pub fn refresh(&self) -> u64 {
        // The lock acquisition is the refresh barrier's wait: a span around
        // it shows writer contention directly in a trace.
        let mut w = {
            let _wait = skyline_core::span!("serve.refresh.wait");
            self.lock_writer()
        };
        w.refresh_calls += 1;
        let (nth, stall_ms) = self.options.injected_stall;
        if nth != 0 && w.refresh_calls == nth {
            // Spin on the telemetry clock (raw `thread::sleep` is banned
            // workspace-wide) so the stall is a real span with real
            // duration — the latency trigger and the open-loop driver both
            // observe it exactly like an organic slow rebuild.
            let _stall = skyline_core::span!("serve.refresh.injected_stall", stall_ms);
            let begin = skyline_core::telemetry::now_ns();
            skyline_core::telemetry::spin_until(begin.saturating_add(stall_ms * 1_000_000));
        }
        self.publish_if_dirty(&mut w)
    }

    /// A lock-free reader positioned at the latest published epoch. Takes
    /// the writer lock once, here; [`SnapshotReader::snapshot`] never locks.
    pub fn reader(&self) -> SnapshotReader {
        let w = self.lock_writer();
        SnapshotReader {
            inner: w.publisher.reader(),
        }
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<Snapshot> {
        self.lock_writer().publisher.latest()
    }

    /// The latest published epoch number.
    pub fn epoch(&self) -> u64 {
        self.lock_writer().publisher.epoch()
    }

    /// Updates buffered since the last publication.
    pub fn pending_updates(&self) -> usize {
        self.lock_writer().dirty
    }

    /// Number of live points, including buffered (not yet published)
    /// updates.
    pub fn len(&self) -> usize {
        self.lock_writer().maintained.len()
    }

    /// True iff no live points (buffered updates included).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The options the server was built with.
    pub fn options(&self) -> &ServerOptions {
        &self.options
    }
}

/// A reader's cursor into the epoch chain. Cheap to clone (each clone
/// advances independently); every method is lock-free.
#[derive(Debug)]
pub struct SnapshotReader {
    inner: EpochReader<Snapshot>,
}

impl SnapshotReader {
    /// Advances to the latest published epoch and returns its snapshot.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.inner.refresh()
    }

    /// The snapshot at the reader's current (pinned) epoch, without
    /// advancing — later publications do not affect it.
    pub fn current(&self) -> Arc<Snapshot> {
        self.inner.current()
    }

    /// The reader's current epoch number.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// True iff a newer epoch has been published past this reader.
    pub fn is_stale(&self) -> bool {
        self.inner.is_stale()
    }
}

impl Clone for SnapshotReader {
    fn clone(&self) -> Self {
        SnapshotReader {
            inner: self.inner.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::from_coords([(4, 36), (12, 20), (28, 8), (16, 28), (32, 4)]).expect("valid coords")
    }

    #[test]
    fn empty_server_answers_empty() {
        let server = SkylineServer::new(ServerOptions::default());
        assert_eq!(server.epoch(), 0);
        assert!(server.is_empty());
        let snap = server.latest();
        assert!(snap.is_empty());
        assert!(snap.quadrant(Point::new(1, 1)).is_empty());
        assert!(snap.global(Point::new(1, 1)).is_empty());
        assert!(snap.dynamic(Point::new(1, 1)).is_empty());
        assert!(snap.safe_zone(Point::new(1, 1)).is_none());
        assert!(snap.trace(Point::new(1, 1), Point::new(3, 3)).is_empty());
    }

    #[test]
    fn with_dataset_publishes_epoch_one() {
        let (server, handles) =
            SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.len(), 5);
        assert_eq!(handles.len(), 5);
        let snap = server.latest();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 5);
        // Query at the origin: the full quadrant skyline.
        let answer = snap.quadrant(Point::new(1, 1));
        assert!(!answer.is_empty());
        assert!(answer.windows(2).all(|w| w[0] < w[1]), "sorted handles");
    }

    #[test]
    fn updates_are_invisible_until_refresh() {
        let (server, _) = SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        let mut reader = server.reader();
        let before = reader.snapshot();
        let q = Point::new(1, 1);
        let old_answer = before.quadrant(q);

        // (2, 2) dominates everything from the origin's perspective.
        let h = server.insert(Point::new(2, 2));
        assert_eq!(server.pending_updates(), 1);
        assert!(!reader.is_stale(), "no publication yet");
        assert_eq!(reader.snapshot().quadrant(q), old_answer);

        let epoch = server.refresh();
        assert_eq!(epoch, 2);
        assert_eq!(server.pending_updates(), 0);
        assert!(reader.is_stale());
        let after = reader.snapshot();
        assert_eq!(after.epoch(), 2);
        assert_eq!(after.quadrant(q).as_ref(), &[h]);
        // The pinned pre-update snapshot still answers from its own epoch.
        assert_eq!(before.quadrant(q), old_answer);
    }

    #[test]
    fn threshold_triggers_automatic_publication() {
        let options = ServerOptions {
            rebuild_threshold: 3,
            ..ServerOptions::default()
        };
        let (server, _) = SkylineServer::with_dataset(&small_dataset(), options);
        assert_eq!(server.epoch(), 1);
        server.insert(Point::new(40, 40));
        server.insert(Point::new(44, 44));
        assert_eq!(server.epoch(), 1, "below threshold: still buffered");
        server.insert(Point::new(48, 48));
        assert_eq!(server.epoch(), 2, "threshold reached: auto-published");
        assert_eq!(server.pending_updates(), 0);
    }

    #[test]
    fn remove_unknown_handle_is_refused() {
        let (server, handles) =
            SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        assert!(!server.remove(Handle(999)));
        assert!(server.remove(handles[0]));
        assert!(!server.remove(handles[0]), "double remove refused");
        assert_eq!(server.len(), 4);
    }

    #[test]
    fn refresh_without_updates_keeps_the_epoch() {
        let (server, _) = SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        assert_eq!(server.refresh(), 1);
        assert_eq!(server.refresh(), 1, "no spurious epochs");
    }

    #[test]
    fn injected_stall_fires_on_the_nth_refresh_only() {
        use skyline_core::telemetry::now_ns;
        let options = ServerOptions {
            injected_stall: (2, 20),
            ..ServerOptions::default()
        };
        let (server, _) = SkylineServer::with_dataset(&small_dataset(), options);
        assert_eq!(server.refresh(), 1, "first refresh: no stall, no epoch");
        let begin = now_ns();
        assert_eq!(server.refresh(), 1, "second refresh: stalls, no epoch");
        let stalled_ns = now_ns().saturating_sub(begin);
        assert!(
            stalled_ns >= 20_000_000,
            "second refresh must stall >= 20ms, took {stalled_ns}ns"
        );
        assert_eq!(server.refresh(), 1, "third refresh: hook spent");
        // The stall never touches data: answers are those of epoch 1.
        assert!(!server.latest().quadrant(Point::new(1, 1)).is_empty());
    }

    #[test]
    fn cold_start_from_container_matches_the_warm_server() {
        let (warm, handles) =
            SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        let bytes = warm
            .latest()
            .to_container()
            .expect("a populated snapshot serializes");
        let (cold, cold_handles) =
            SkylineServer::from_container(&bytes, ServerOptions::default()).unwrap();
        assert_eq!(cold.epoch(), 1);
        assert_eq!(cold_handles, handles);
        let q = Point::new(1, 1);
        assert_eq!(cold.latest().quadrant(q), warm.latest().quadrant(q));
        // Mutations after a cold start behave exactly like a warm server:
        // fresh handles continue past the restored ones, and the rebuild
        // triggered by the next publication sees the restored points.
        let h = cold.insert(Point::new(2, 2));
        assert!(h > *cold_handles.last().unwrap());
        cold.refresh();
        assert_eq!(cold.latest().quadrant(q).as_ref(), &[h]);
        assert!(cold.remove(h));
        cold.refresh();
        assert_eq!(cold.latest().quadrant(q), warm.latest().quadrant(q));
    }

    #[test]
    fn cold_start_rejects_corrupt_bytes() {
        let (warm, _) = SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        let mut bytes = warm.latest().to_container().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(SkylineServer::from_container(&bytes, ServerOptions::default()).is_err());
    }

    #[test]
    fn removing_everything_publishes_an_empty_snapshot() {
        let (server, handles) =
            SkylineServer::with_dataset(&small_dataset(), ServerOptions::default());
        for h in handles {
            server.remove(h);
        }
        server.refresh();
        let snap = server.latest();
        assert!(snap.is_empty());
        assert!(snap.quadrant(Point::new(1, 1)).is_empty());
    }
}
