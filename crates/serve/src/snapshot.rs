//! One published epoch: an immutable, self-contained view of the diagrams
//! plus its (optional) exact result caches.
//!
//! A [`Snapshot`] is never mutated after publication — readers share it via
//! `Arc`, so every answer derived from one snapshot is from one consistent
//! epoch by construction. All lookups take `&self` and are lock-free; the
//! `no-lock-read-path` lint keeps `Mutex`/`RwLock` out of this file.
//!
//! # Answer space
//!
//! Results are returned as sorted [`Handle`] lists, not raw
//! [`PointId`]s: point ids are positional within one epoch's dataset and
//! would be meaningless across epochs, while handles are stable across the
//! server's rebuilds (see [`skyline_core::maintained`]).
//!
//! # What is cached
//!
//! * **quadrant** — keyed by *polyomino id*: the merged diagram proves every
//!   query point in the polyomino has the identical result, so this is the
//!   coarsest exact key.
//! * **global / dynamic** — keyed by linear cell/subcell id, exact for
//!   diagram lookups because a diagram assigns one result per cell. When
//!   the corresponding diagram was *not* built, answers fall back to a
//!   from-scratch computation at the exact query point; those answers are
//!   not constant per cell on grid lines, so they are never cached (they
//!   count as cache misses of an absent cache, i.e. not at all).

use skyline_core::sync::Arc;

use skyline_apps::continuous::{self, TraversalStep};
use skyline_core::diagram::PolyominoRef;
use skyline_core::geometry::{Dataset, Point, PointId};
use skyline_core::index::SkylineIndex;
use skyline_core::maintained::Handle;
use skyline_core::query;

use crate::cache::{CacheStats, ResultCache};

/// Maps an id-space answer to the snapshot's stable handle space, sorted.
fn to_handles(handles: &[Handle], ids: impl IntoIterator<Item = PointId>) -> Arc<[Handle]> {
    let mut out: Vec<Handle> = ids.into_iter().map(|id| handles[id.index()]).collect();
    out.sort_unstable();
    out.into()
}

fn empty_result() -> Arc<[Handle]> {
    Vec::new().into()
}

/// The populated part of a snapshot (absent while the server is empty).
#[derive(Debug)]
struct Body {
    index: SkylineIndex,
    /// Entry `i` is the stable handle of the dataset's `PointId(i)`.
    handles: Vec<Handle>,
    quadrant_cache: Option<ResultCache>,
    global_cache: Option<ResultCache>,
    dynamic_cache: Option<ResultCache>,
}

/// An immutable published epoch of the server's diagrams. See the module
/// docs.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    body: Option<Body>,
}

impl Snapshot {
    /// A snapshot of the empty dataset (every answer is empty).
    pub(crate) fn empty(epoch: u64) -> Self {
        Snapshot { epoch, body: None }
    }

    /// Wraps a built index. `handles[i]` must be the handle of `PointId(i)`
    /// in the index's dataset. `cache_slots == 0` disables the caches.
    pub(crate) fn new(
        epoch: u64,
        index: SkylineIndex,
        handles: Vec<Handle>,
        cache_slots: usize,
    ) -> Self {
        debug_assert_eq!(index.dataset().len(), handles.len());
        let cache =
            |present: bool| (cache_slots > 0 && present).then(|| ResultCache::new(cache_slots));
        let quadrant_cache = cache(true);
        let global_cache = cache(index.global_diagram().is_some());
        let dynamic_cache = cache(index.dynamic_diagram().is_some());
        Snapshot {
            epoch,
            body: Some(Body {
                index,
                handles,
                quadrant_cache,
                global_cache,
                dynamic_cache,
            }),
        }
    }

    /// The epoch this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Estimated heap bytes owned by this snapshot: the index arenas, the
    /// handle table, and the result caches (slot arrays plus filled
    /// entries). The empty snapshot owns nothing. This is the
    /// per-snapshot footprint `experiments e15` reports for retention
    /// budgeting.
    pub fn heap_bytes(&self) -> usize {
        self.body.as_ref().map_or(0, |b| {
            b.index.heap_bytes()
                + skyline_core::telemetry::mem::vec_heap_bytes(&b.handles)
                + [&b.quadrant_cache, &b.global_cache, &b.dynamic_cache]
                    .into_iter()
                    .flatten()
                    .map(ResultCache::heap_bytes)
                    .sum::<usize>()
        })
    }

    /// The epoch's dataset, or `None` for the empty snapshot. Differential
    /// checkers recompute answers from exactly this dataset.
    pub fn dataset(&self) -> Option<&Dataset> {
        self.body.as_ref().map(|b| b.index.dataset())
    }

    /// The handle of each dataset point: entry `i` is the stable handle of
    /// `PointId(i)`. Empty for the empty snapshot.
    pub fn handles(&self) -> &[Handle] {
        self.body.as_ref().map_or(&[], |b| b.handles.as_slice())
    }

    /// The underlying index, or `None` for the empty snapshot.
    pub fn index(&self) -> Option<&SkylineIndex> {
        self.body.as_ref().map(|b| &b.index)
    }

    /// Number of points in this epoch.
    pub fn len(&self) -> usize {
        self.body.as_ref().map_or(0, |b| b.handles.len())
    }

    /// True iff this epoch holds no points.
    pub fn is_empty(&self) -> bool {
        self.body.is_none()
    }

    /// Quadrant skyline of `q`, as sorted handles. Cached by polyomino id.
    pub fn quadrant(&self, q: Point) -> Arc<[Handle]> {
        let Some(body) = &self.body else {
            return empty_result();
        };
        let diagram = body.index.quadrant_diagram();
        let key = body
            .index
            .polyominoes()
            .polyomino_id_of_cell(diagram.cell_key(q)) as u64;
        let compute = || to_handles(&body.handles, diagram.query(q).iter().copied());
        match &body.quadrant_cache {
            Some(cache) => cache.get_or_compute(key, compute),
            None => compute(),
        }
    }

    /// Global skyline of `q`, as sorted handles. Cached by cell id when the
    /// global diagram was built; otherwise computed from scratch on this
    /// epoch's dataset (uncached — see the module docs).
    pub fn global(&self, q: Point) -> Arc<[Handle]> {
        let Some(body) = &self.body else {
            return empty_result();
        };
        match body.index.global_diagram() {
            Some(diagram) => {
                let key = diagram.cell_key(q) as u64;
                let compute = || to_handles(&body.handles, diagram.query(q).iter().copied());
                match &body.global_cache {
                    Some(cache) => cache.get_or_compute(key, compute),
                    None => compute(),
                }
            }
            None => to_handles(
                &body.handles,
                query::global_skyline(body.index.dataset(), q),
            ),
        }
    }

    /// Dynamic skyline of `q`, as sorted handles. Cached by subcell id when
    /// the dynamic diagram was built; otherwise computed from scratch on
    /// this epoch's dataset (uncached).
    pub fn dynamic(&self, q: Point) -> Arc<[Handle]> {
        let Some(body) = &self.body else {
            return empty_result();
        };
        match body.index.dynamic_diagram() {
            Some(diagram) => {
                let key = diagram.subcell_key(q) as u64;
                let compute = || to_handles(&body.handles, diagram.query(q).iter().copied());
                match &body.dynamic_cache {
                    Some(cache) => cache.get_or_compute(key, compute),
                    None => compute(),
                }
            }
            None => to_handles(
                &body.handles,
                query::dynamic_skyline(body.index.dataset(), q),
            ),
        }
    }

    /// The skyline polyomino containing `q` — the region where `q` can move
    /// without its quadrant result changing. `None` for the empty snapshot.
    pub fn safe_zone(&self, q: Point) -> Option<PolyominoRef<'_>> {
        self.body.as_ref().map(|b| b.index.safe_zone(q))
    }

    /// Itinerary of a query moving from `a` to `b` over this epoch's
    /// quadrant diagram (see [`skyline_apps::continuous`]); results are in
    /// the epoch's `PointId` space, mapped to handles via
    /// [`Snapshot::handles`]. Empty for the empty snapshot.
    pub fn trace(&self, a: Point, b: Point) -> Vec<TraversalStep> {
        self.body.as_ref().map_or_else(Vec::new, |body| {
            continuous::trace_segment(body.index.quadrant_diagram(), a, b)
        })
    }

    /// Serializes this epoch into a snapshot container
    /// ([`skyline_core::container`]): the bytes cold-start a server via
    /// [`SkylineServer::from_container`](crate::SkylineServer::from_container)
    /// without rebuilding any diagram, and round-trip the handle table so
    /// answers stay in the same stable handle space. `None` for the empty
    /// snapshot (there is nothing to persist).
    pub fn to_container(&self) -> Option<Vec<u8>> {
        self.body
            .as_ref()
            .map(|b| skyline_core::container::encode_index(&b.index, &b.handles))
    }

    /// Aggregated hit/miss counters over this snapshot's caches. All zero
    /// when caching is disabled (fallback-path answers bypass the caches
    /// and are not counted).
    pub fn cache_stats(&self) -> CacheStats {
        let Some(body) = &self.body else {
            return CacheStats::default();
        };
        [
            &body.quadrant_cache,
            &body.global_cache,
            &body.dynamic_cache,
        ]
        .into_iter()
        .flatten()
        .fold(CacheStats::default(), |acc, c| acc.merged(c.stats()))
    }
}
