//! A deterministic closed-loop workload driver for [`SkylineServer`]:
//! rounds of writer updates followed by a barrier, then a batch of reader
//! queries fanned out over the scoped pool.
//!
//! # Determinism contract
//!
//! The driver is built so that its [`WorkloadReport::checksum`] is
//! **bit-identical** across reader thread counts and across cache
//! enabled/disabled runs — that equality is an acceptance test, not a
//! hope:
//!
//! * every query is generated from a counter-based RNG keyed by
//!   `(seed, round, reader, i)` — no shared RNG state, no ordering
//!   sensitivity;
//! * updates apply between rounds on the caller thread and are fenced by a
//!   [`SkylineServer::refresh`] barrier, so every reader batch in a round
//!   observes the same epoch's content;
//! * per-query digests are folded with XOR, which is order-independent.
//!
//! A divergent checksum therefore means a real answer changed — the
//! differential stress harness and the cache on/off test both rely on
//! this.

use skyline_core::sync::Arc;

use skyline_core::geometry::Point;
use skyline_core::maintained::Handle;
use skyline_core::parallel::{self, ParallelConfig};

use crate::cache::CacheStats;
use crate::server::SkylineServer;
use crate::snapshot::Snapshot;

/// Relative weights of the five request kinds in the query mix.
#[derive(Clone, Copy, Debug)]
pub struct QueryMix {
    /// Weight of quadrant skyline lookups.
    pub quadrant: u32,
    /// Weight of global skyline lookups.
    pub global: u32,
    /// Weight of dynamic skyline lookups.
    pub dynamic: u32,
    /// Weight of safe-zone (polyomino) lookups.
    pub safe_zone: u32,
    /// Weight of continuous segment traces.
    pub trace: u32,
}

impl QueryMix {
    /// Quadrant lookups only — the cheapest, most cache-friendly mix.
    pub const fn quadrant_only() -> Self {
        QueryMix {
            quadrant: 1,
            global: 0,
            dynamic: 0,
            safe_zone: 0,
            trace: 0,
        }
    }

    /// Sum of the weights (0 is rejected by the driver).
    pub fn total(&self) -> u32 {
        self.quadrant + self.global + self.dynamic + self.safe_zone + self.trace
    }
}

impl Default for QueryMix {
    /// A read-mostly serving mix: mostly quadrant lookups, some global,
    /// occasional safe zones and traces, no dynamic (it requires the
    /// expensive dynamic diagram).
    fn default() -> Self {
        QueryMix {
            quadrant: 6,
            global: 2,
            dynamic: 0,
            safe_zone: 1,
            trace: 1,
        }
    }
}

/// Shape of one closed-loop run. See the module docs for the determinism
/// contract.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Reader fan-out per round: `0` runs one reader inline on the caller
    /// (the sequential reference), `k >= 1` fans `k` readers out on the
    /// scoped pool.
    pub readers: usize,
    /// Number of update→barrier→query rounds.
    pub rounds: usize,
    /// Queries issued by each reader in each round.
    pub queries_per_reader: usize,
    /// Writer updates applied (then fenced) before each round's queries.
    pub updates_per_round: usize,
    /// Query coordinates are drawn from `[0, domain)`.
    pub domain: i64,
    /// Master seed; every random choice derives from it by counter.
    pub seed: u64,
    /// Request-kind weights.
    pub mix: QueryMix,
}

impl WorkloadSpec {
    /// Total queries the spec will issue.
    pub fn total_queries(&self) -> u64 {
        (self.readers.max(1) as u64) * (self.rounds as u64) * (self.queries_per_reader as u64)
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            readers: 4,
            rounds: 8,
            queries_per_reader: 250,
            updates_per_round: 0,
            domain: 1 << 16,
            seed: 0x5eed_0001,
            mix: QueryMix::default(),
        }
    }
}

/// What one closed-loop run did and observed.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadReport {
    /// Queries answered.
    pub queries: u64,
    /// Updates applied (inserts + removes).
    pub updates: u64,
    /// Epochs published during the run.
    pub epochs_published: u64,
    /// Wall-clock time of the whole run.
    pub elapsed_ms: f64,
    /// Order-independent digest of every answer; identical across thread
    /// counts and cache settings for the same spec and server content.
    pub checksum: u64,
    /// Cache counters of the final epoch's snapshot (a whole-run total when
    /// the run publishes no epochs; the last epoch's share otherwise).
    pub cache: CacheStats,
}

impl WorkloadReport {
    /// Queries per second over the whole run.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.queries as f64 * 1000.0 / self.elapsed_ms
        }
    }
}

/// SplitMix64: the counter-keyed generator behind every random choice
/// (shared with the open-loop driver in [`crate::openloop`]).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny counter-based stream: `n`th draw of stream `key`.
fn draw(key: u64, n: u64) -> u64 {
    splitmix(key ^ splitmix(n.wrapping_mul(0xa076_1d64_78bd_642f)))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(acc: u64, word: u64) -> u64 {
    let mut acc = acc;
    for shift in [0u32, 32] {
        acc = (acc ^ ((word >> shift) & 0xffff_ffff)).wrapping_mul(FNV_PRIME);
    }
    acc
}

fn fnv_handles(mut acc: u64, handles: &[Handle]) -> u64 {
    acc = fnv(acc, handles.len() as u64);
    for h in handles {
        acc = fnv(acc, h.0);
    }
    acc
}

/// Digest of one answered query: kind, query point, and the full answer.
/// Exact integers only — no floats enter the checksum. Shared by the
/// closed-loop and open-loop drivers so their answers fold identically.
pub(crate) fn digest_query(kind: u64, q: Point, snap: &Snapshot, domain: i64, rng: u64) -> u64 {
    let mut acc = fnv(
        fnv(FNV_OFFSET, kind),
        (q.x as u64) << 32 | (q.y as u64 & 0xffff_ffff),
    );
    match kind {
        0 => acc = fnv_handles(acc, &snap.quadrant(q)),
        1 => acc = fnv_handles(acc, &snap.global(q)),
        2 => acc = fnv_handles(acc, &snap.dynamic(q)),
        3 => {
            if let Some(zone) = snap.safe_zone(q) {
                acc = fnv(acc, zone.area() as u64);
                acc = fnv(acc, zone.cells.len() as u64);
            }
        }
        _ => {
            let b = point_in_domain(domain, splitmix(rng ^ 0x7ace));
            acc = fnv(acc, (b.x as u64) << 32 | (b.y as u64 & 0xffff_ffff));
            for step in snap.trace(q, b) {
                acc = fnv(acc, step.result.len() as u64);
                for id in &step.result {
                    acc = fnv(acc, id.index() as u64);
                }
            }
        }
    }
    acc
}

pub(crate) fn point_in_domain(domain: i64, rng: u64) -> Point {
    let domain = domain.max(1) as u64;
    Point::new(
        (draw(rng, 1) % domain) as i64,
        (draw(rng, 2) % domain) as i64,
    )
}

pub(crate) fn pick_kind(mix: &QueryMix, rng: u64) -> u64 {
    let total = mix.total().max(1) as u64;
    let mut roll = draw(rng, 0) % total;
    for (kind, weight) in [
        (0u64, mix.quadrant),
        (1, mix.global),
        (2, mix.dynamic),
        (3, mix.safe_zone),
        (4, mix.trace),
    ] {
        let weight = weight as u64;
        if roll < weight {
            return kind;
        }
        roll -= weight;
    }
    0
}

/// One reader's batch for one round: returns its XOR-folded digest.
fn reader_batch(server: &SkylineServer, spec: &WorkloadSpec, round: usize, reader: usize) -> u64 {
    let _batch = skyline_core::span!("workload.reader_batch", spec.queries_per_reader as u64);
    skyline_core::counter!("workload.queries").add(spec.queries_per_reader as u64);
    let snap = server.reader().snapshot();
    let mut acc = 0u64;
    for i in 0..spec.queries_per_reader {
        let key = splitmix(spec.seed)
            ^ splitmix(round as u64)
            ^ splitmix((reader as u64) << 20)
            ^ splitmix((i as u64) << 40);
        let kind = pick_kind(&spec.mix, key);
        let q = point_in_domain(spec.domain, splitmix(key ^ 0xbeef));
        acc ^= digest_query(kind, q, &snap, spec.domain, key);
    }
    acc
}

/// Applies one round of writer updates: inserts fresh points and removes
/// random live handles, keeping the point count roughly stable.
fn apply_updates(
    server: &SkylineServer,
    spec: &WorkloadSpec,
    round: usize,
    pool: &mut Vec<Handle>,
) -> u64 {
    let mut applied = 0u64;
    for u in 0..spec.updates_per_round {
        let key =
            splitmix(spec.seed ^ 0xdead) ^ splitmix(round as u64) ^ splitmix((u as u64) << 32);
        // Remove (~2 in 5) only while a healthy pool remains.
        if draw(key, 9) % 5 < 2 && pool.len() > 4 {
            let victim = pool.swap_remove((draw(key, 10) as usize) % pool.len());
            if server.remove(victim) {
                applied += 1;
            }
        } else {
            pool.push(server.insert(point_in_domain(spec.domain, key)));
            applied += 1;
        }
    }
    applied
}

/// Runs the closed loop: for each round, apply the writer updates, fence
/// them with a [`SkylineServer::refresh`] barrier, then fan
/// `spec.readers` reader batches out on the scoped pool. `handles` seeds
/// the removable-handle pool (pass the handles from
/// [`SkylineServer::with_dataset`]; ignored when `updates_per_round` is 0).
pub fn run(server: &SkylineServer, spec: &WorkloadSpec, handles: &[Handle]) -> WorkloadReport {
    assert!(spec.mix.total() > 0, "query mix must have positive weight");
    let reader_count = spec.readers.max(1);
    let cfg = ParallelConfig::with_threads(spec.readers);
    let mut pool: Vec<Handle> = handles.to_vec();
    let epoch_before = server.epoch();
    // The telemetry clock is the workspace's one timing source (the
    // `no-ad-hoc-timing` lint bans raw `Instant` here); it is available —
    // and `elapsed_ms` stays exact — with the telemetry feature off.
    let start_ns = skyline_core::telemetry::now_ns();
    let mut checksum = 0u64;
    let mut updates = 0u64;
    for round in 0..spec.rounds {
        let _round = skyline_core::span!("workload.round", round as u64);
        if spec.updates_per_round > 0 {
            updates += apply_updates(server, spec, round, &mut pool);
            server.refresh();
        }
        for digest in
            parallel::map_indexed(&cfg, reader_count, |r| reader_batch(server, spec, round, r))
        {
            checksum ^= digest;
        }
    }
    let elapsed_ms = skyline_core::telemetry::ms_since(start_ns);
    let final_snapshot: Arc<Snapshot> = server.latest();
    WorkloadReport {
        queries: spec.total_queries(),
        updates,
        epochs_published: server.epoch() - epoch_before,
        elapsed_ms,
        checksum,
        cache: final_snapshot.cache_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerOptions, SkylineServer};
    use skyline_core::geometry::Dataset;

    fn server_with(n: i64, options: ServerOptions) -> (SkylineServer, Vec<Handle>) {
        let coords: Vec<(i64, i64)> = (0..n)
            .map(|i| {
                let r = splitmix(0xa11ce ^ (i as u64));
                ((r % 997) as i64 * 4, ((r >> 32) % 997) as i64 * 4)
            })
            .collect();
        let ds = Dataset::from_coords(coords).expect("generated coords are valid");
        SkylineServer::with_dataset(&ds, options)
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            readers: 4,
            rounds: 3,
            queries_per_reader: 40,
            updates_per_round: 6,
            domain: 4000,
            seed: 99,
            mix: QueryMix {
                quadrant: 4,
                global: 2,
                dynamic: 0,
                safe_zone: 1,
                trace: 1,
            },
        }
    }

    #[test]
    fn checksum_is_deterministic_across_runs() {
        // The digest streams are keyed by (seed, round, reader, i) and
        // folded with XOR, so the checksum depends only on the spec and the
        // server content — not on how many pool workers `map_indexed`
        // actually got (the SKYLINE_THREADS stress matrix exercises the
        // worker-count axis on this same property).
        let spec4 = spec();
        let (a, ha) = server_with(60, ServerOptions::default());
        let (b, hb) = server_with(60, ServerOptions::default());
        let ra = run(&a, &spec4, &ha);
        let rb = run(&b, &spec4, &hb);
        assert_eq!(ra.checksum, rb.checksum, "same spec, same content");
        assert_eq!(ra.queries, spec4.total_queries());
        assert!(ra.updates > 0);
        assert!(ra.epochs_published >= spec4.rounds as u64);
    }

    #[test]
    fn checksum_is_cache_independent() {
        let spec = spec();
        let cached = ServerOptions::default();
        let uncached = ServerOptions {
            cache_slots: 0,
            ..ServerOptions::default()
        };
        let (a, ha) = server_with(60, cached);
        let (b, hb) = server_with(60, uncached);
        let ra = run(&a, &spec, &ha);
        let rb = run(&b, &spec, &hb);
        assert_eq!(ra.checksum, rb.checksum, "cache on/off agree bit-for-bit");
        assert_eq!(rb.cache.lookups(), 0, "disabled cache counts nothing");
    }

    #[test]
    fn read_only_run_publishes_nothing_and_hits_the_cache() {
        let read_only = WorkloadSpec {
            updates_per_round: 0,
            rounds: 2,
            ..spec()
        };
        let (server, handles) = server_with(60, ServerOptions::default());
        let report = run(&server, &read_only, &handles);
        assert_eq!(report.epochs_published, 0);
        assert_eq!(report.updates, 0);
        assert!(report.cache.hits > 0, "repeated cells must hit");
        assert!(report.queries_per_sec() > 0.0);
    }

    #[test]
    fn total_queries_counts_inline_reader() {
        let s = WorkloadSpec {
            readers: 0,
            rounds: 2,
            queries_per_reader: 10,
            ..WorkloadSpec::default()
        };
        assert_eq!(s.total_queries(), 20);
    }
}
