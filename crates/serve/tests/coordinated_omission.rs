//! Coordinated-omission differential: the open-loop driver and the
//! closed-loop driver watch the *same* server stall and must tell
//! different stories — by design.
//!
//! A deterministic stall is injected into `SkylineServer::refresh` (the
//! `injected_stall` test hook). The closed-loop workload pays the stall
//! once and amortizes it over every query, so its mean per-query latency
//! stays tiny: the classic coordinated-omission blind spot, because a
//! closed loop simply stops *sampling* while the server is wedged. The
//! open-loop driver keeps the arrival schedule running through the stall
//! and charges every queued arrival from its scheduled time, so the same
//! stall surfaces directly in the p99.
//!
//! The stall must never steer answers: open-loop digests are asserted
//! identical across lane fan-outs {0, 1, 4} (and the whole test runs
//! under the CI `SKYLINE_THREADS` {0, 1, 4} matrix), and identical to a
//! stall-free reference run.

use skyline_core::geometry::Dataset;
use skyline_core::telemetry::bucket_lower_bound;
use skyline_serve::workload::{self, WorkloadSpec};
use skyline_serve::{
    run_open_loop, LatencyHistogram, OpenLoopSpec, QueryMix, ServerOptions, SkylineServer,
};

/// SplitMix64 step for deterministic dataset generation.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const STALL_MS: u64 = 150;
const DOMAIN: i64 = 4_000;

/// A fresh server over the same deterministic dataset every time. The
/// stall hook is per-server state (`refresh_calls`), so each measured run
/// gets its own instance to keep the stall's position identical.
fn server_with_stall(stall: (u64, u64)) -> (SkylineServer, Vec<skyline_core::maintained::Handle>) {
    let coords: Vec<(i64, i64)> = (0..160)
        .map(|i| {
            let r = splitmix(0xc0_0c ^ (i as u64));
            ((r % 997) as i64 * 4, ((r >> 32) % 997) as i64 * 4)
        })
        .collect();
    let ds = Dataset::from_coords(coords).expect("generated coords are valid");
    let options = ServerOptions {
        with_global: true,
        injected_stall: stall,
        ..ServerOptions::default()
    };
    SkylineServer::with_dataset(&ds, options)
}

/// Nearest-rank p99 from the 65-bucket log2 histogram, reported as the
/// winning bucket's lower bound — a deliberate *underestimate*, so the
/// "p99 exposes the stall" assertion cannot pass on interpolation slack.
fn p99_floor_ns(hist: &LatencyHistogram) -> u64 {
    let target = (hist.count * 99).div_ceil(100).max(1);
    let mut cum = 0u64;
    for (i, &count) in hist.buckets.iter().enumerate() {
        cum += count;
        if cum >= target {
            return bucket_lower_bound(i);
        }
    }
    0
}

fn open_spec(lanes: usize) -> OpenLoopSpec {
    OpenLoopSpec {
        lanes,
        // 1000 arrivals at 20k/s: a 50 ms schedule. The stall fires on the
        // first refresh barrier (arrival 200, ~10 ms in) and wedges the
        // server for 150 ms, so most of the schedule queues behind it.
        rate: 20_000,
        arrivals: 1_000,
        domain: DOMAIN,
        seed: 41,
        mix: QueryMix::default(),
        refresh_every: 200,
    }
}

#[test]
fn open_loop_p99_exposes_the_stall_the_closed_loop_mean_hides() {
    // Closed loop: same server shape, same stall on the first refresh.
    let (server, handles) = server_with_stall((1, STALL_MS));
    let spec = WorkloadSpec {
        readers: 1,
        rounds: 1,
        queries_per_reader: 1_000,
        updates_per_round: 4,
        domain: DOMAIN,
        seed: 41,
        mix: QueryMix::default(),
    };
    let closed = workload::run(&server, &spec, &handles);
    let closed_mean_ms = closed.elapsed_ms / closed.queries as f64;
    // The run as a whole paid the stall...
    assert!(
        closed.elapsed_ms >= STALL_MS as f64,
        "closed-loop run finished in {:.1} ms, before the {STALL_MS} ms stall elapsed",
        closed.elapsed_ms
    );
    // ...but the per-query mean buries it: 150 ms over 1000 queries is
    // 0.15 ms/query. That is coordinated omission, stated as an assert.
    assert!(
        closed_mean_ms * 20.0 < STALL_MS as f64,
        "closed-loop mean {closed_mean_ms:.3} ms/query should amortize the stall away"
    );

    // Open loop: the schedule keeps arrivals coming while the server is
    // wedged, and latency runs from *scheduled* arrival time.
    let (server, _handles) = server_with_stall((1, STALL_MS));
    let open = run_open_loop(&server, &open_spec(0));
    assert_eq!(open.refreshes, 4, "refresh cadence changed under the test");
    let p99_ms = p99_floor_ns(&open.overall) as f64 / 1_000_000.0;
    assert!(
        p99_ms * 4.0 >= STALL_MS as f64,
        "open-loop p99 floor {p99_ms:.1} ms does not expose the {STALL_MS} ms stall \
         (elapsed {:.1} ms over {} arrivals)",
        open.elapsed_ms,
        open.arrivals
    );
    // And the exposed tail dwarfs what the closed loop reported.
    assert!(
        p99_ms > closed_mean_ms * 20.0,
        "open-loop p99 {p99_ms:.3} ms vs closed-loop mean {closed_mean_ms:.3} ms"
    );
}

#[test]
fn stalled_open_loop_digests_match_across_lane_fanouts() {
    // The reference: no stall, single inline lane.
    let (server, _h) = server_with_stall((0, 0));
    let reference = run_open_loop(&server, &open_spec(0)).checksum;

    for lanes in [0usize, 1, 4] {
        let (server, _h) = server_with_stall((1, STALL_MS));
        let report = run_open_loop(&server, &open_spec(lanes));
        assert_eq!(
            report.checksum, reference,
            "open-loop digest diverged at lanes={lanes} under an injected stall"
        );
        assert_eq!(report.arrivals, 1_000);
    }
}
