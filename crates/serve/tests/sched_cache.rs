//! Model-checked result-cache suite: the first-write-wins fill race of
//! `skyline_serve`'s `ResultCache` explored over every interleaving within
//! the preemption bound.
//!
//! Compiled only under `RUSTFLAGS="--cfg skyline_sched"`.
#![cfg(skyline_sched)]

use skyline_core::maintained::Handle;
use skyline_core::sync::{sched, Arc};
use skyline_serve::cache::ResultCache;

fn answer(ids: &[u64]) -> Arc<[Handle]> {
    ids.iter().copied().map(Handle).collect()
}

/// Resolve the `serve.cache.{hit,miss,fill}` counter sites and registry
/// nodes before entering the model (replay determinism): one miss+fill and
/// one hit on a throwaway cache touch all three.
fn prewarm() {
    let cache = ResultCache::new(2);
    let _ = cache.get_or_compute(0, || answer(&[1]));
    let _ = cache.get_or_compute(0, || answer(&[1]));
}

/// Two threads fill the same key concurrently: both must come back with
/// the (identical) answer, exactly one publication wins the slot, and the
/// slot afterwards serves hits — in every interleaving.
#[test]
fn concurrent_fill_same_key() {
    prewarm();
    sched::model(|| {
        let cache = Arc::new(ResultCache::new(4));
        let c = Arc::clone(&cache);
        let t = sched::spawn(move || c.get_or_compute(7, || answer(&[3, 5])));
        let mine = cache.get_or_compute(7, || answer(&[3, 5]));
        let theirs = t.join();
        assert_eq!(*mine, *theirs, "racing fills must agree on the answer");
        // Whoever won, the slot is now populated: a third lookup is a hit
        // and must return the published value, not recompute.
        let again = cache.get_or_compute(7, || answer(&[99]));
        assert_eq!(
            *again, *mine,
            "a populated slot must serve the stored answer"
        );
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 3);
        assert!(stats.hits >= 1, "the post-race lookup is always a hit");
    });
}

/// A direct-mapped collision under concurrency: the second key maps to the
/// claimed slot and must recompute (permanent miss) without disturbing the
/// first key's entry.
#[test]
fn collision_misses_without_corruption() {
    prewarm();
    sched::model(|| {
        // Two slots: keys 0 and 2 collide on slot 0.
        let cache = Arc::new(ResultCache::new(2));
        let c = Arc::clone(&cache);
        let t = sched::spawn(move || c.get_or_compute(0, || answer(&[1])));
        let colliding = cache.get_or_compute(2, || answer(&[2]));
        let first = t.join();
        assert_eq!(*first, *answer(&[1]));
        assert_eq!(*colliding, *answer(&[2]));
        // The slot belongs to whichever key claimed it first; the other
        // key stays a miss but keeps returning its own computed answer.
        let first_again = cache.get_or_compute(0, || answer(&[1]));
        let colliding_again = cache.get_or_compute(2, || answer(&[2]));
        assert_eq!(*first_again, *answer(&[1]));
        assert_eq!(*colliding_again, *answer(&[2]));
        assert_eq!(cache.stats().lookups(), 4);
    });
}
