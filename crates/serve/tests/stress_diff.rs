//! Differential stress harness: every answer a concurrent reader gets from
//! the server must equal a fresh single-threaded recompute over **that
//! snapshot's** dataset.
//!
//! The harness runs under the CI `SKYLINE_THREADS ∈ {0, 1, 4}` matrix: at
//! `0` the role fan-out degenerates to a deterministic sequential
//! interleaving (writer role first, then each reader), at `4` the roles
//! genuinely race on multi-core hosts. Correctness is checked the same way
//! in both regimes — against the epoch-consistent oracle — so a data race,
//! a torn publication, or a cache serving across epochs fails the same
//! assertions everywhere.
//!
//! # Boundary discipline
//!
//! Diagram lookups are exact *off* grid lines (global) and *off* subcell
//! boundaries (dynamic). The harness sidesteps boundary ambiguity by
//! construction: every dataset coordinate is a multiple of 4, every query
//! coordinate is odd. Grid lines sit on multiples of 4 and perpendicular
//! bisectors on even integers, so odd queries never touch either, and all
//! three semantics must agree exactly with the from-scratch oracles.

use std::sync::atomic::{AtomicU64, Ordering};

use skyline_core::geometry::{Dataset, Point, PointId};
use skyline_core::maintained::Handle;
use skyline_core::parallel::{self, ParallelConfig};
use skyline_core::query;
use skyline_serve::workload::{self, QueryMix, WorkloadSpec};
use skyline_serve::{ServerOptions, SkylineServer, Snapshot};

/// SplitMix64 step for deterministic per-role streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(splitmix(seed))
    }
    fn next(&mut self) -> u64 {
        self.0 = splitmix(self.0);
        self.0
    }
}

/// Coordinate span of the test domain; dataset coordinates are multiples
/// of 4 in `[0, 4 * SPAN]`, query coordinates odd in the same range.
const SPAN: u64 = 160;

fn grid_point(rng: &mut Rng) -> Point {
    Point::new(
        4 * (rng.next() % (SPAN + 1)) as i64,
        4 * (rng.next() % (SPAN + 1)) as i64,
    )
}

fn odd_point(rng: &mut Rng) -> Point {
    Point::new(
        2 * (rng.next() % (2 * SPAN)) as i64 + 1,
        2 * (rng.next() % (2 * SPAN)) as i64 + 1,
    )
}

fn seed_server(n: usize, seed: u64, options: ServerOptions) -> (SkylineServer, Vec<Handle>) {
    let mut rng = Rng::new(seed);
    let mut coords: Vec<(i64, i64)> = Vec::new();
    while coords.len() < n {
        let p = grid_point(&mut rng);
        if !coords.contains(&(p.x, p.y)) {
            coords.push((p.x, p.y));
        }
    }
    let ds = Dataset::from_coords(coords).expect("generated grid coords are valid");
    SkylineServer::with_dataset(&ds, options)
}

/// Maps an id-space oracle answer into the snapshot's handle space, sorted.
fn as_handles(snap: &Snapshot, ids: Vec<PointId>) -> Vec<Handle> {
    let handles = snap.handles();
    let mut out: Vec<Handle> = ids.into_iter().map(|id| handles[id.index()]).collect();
    out.sort_unstable();
    out
}

/// The differential core: recompute each semantics from scratch on the
/// snapshot's own dataset and demand equality.
fn check_against_oracle(snap: &Snapshot, q: Point, check_global: bool, check_dynamic: bool) {
    let Some(ds) = snap.dataset() else {
        assert!(snap.quadrant(q).is_empty());
        assert!(snap.global(q).is_empty());
        return;
    };
    let epoch = snap.epoch();
    assert_eq!(
        snap.quadrant(q).as_ref(),
        as_handles(snap, query::quadrant_skyline(ds, q)).as_slice(),
        "quadrant mismatch at {q}, epoch {epoch}"
    );
    if check_global {
        assert_eq!(
            snap.global(q).as_ref(),
            as_handles(snap, query::global_skyline(ds, q)).as_slice(),
            "global mismatch at {q}, epoch {epoch}"
        );
    }
    if check_dynamic {
        assert_eq!(
            snap.dynamic(q).as_ref(),
            as_handles(snap, query::dynamic_skyline(ds, q)).as_slice(),
            "dynamic mismatch at {q}, epoch {epoch}"
        );
    }
}

/// Structural safe-zone check: the zone contains the query's cell, every
/// zone cell carries the query's exact result, and the zone equals what
/// the snapshot's quadrant answer implies.
fn check_safe_zone(snap: &Snapshot, q: Point) {
    let Some(zone) = snap.safe_zone(q) else {
        return;
    };
    let index = snap
        .index()
        .expect("safe zone implies a non-empty snapshot");
    let diagram = index.quadrant_diagram();
    let cell = diagram.grid().cell_of(q);
    assert!(
        zone.cells.contains(&cell),
        "safe zone must contain the query's own cell"
    );
    let expected = diagram.query(q);
    for &c in zone.cells {
        assert_eq!(
            diagram.result(c),
            expected,
            "zone cell {c:?} disagrees with the query result at {q}"
        );
    }
}

/// Trace well-formedness: the itinerary tiles `[0, 1]` exactly with
/// non-empty, contiguous, monotone steps.
fn check_trace(snap: &Snapshot, a: Point, b: Point) {
    let steps = snap.trace(a, b);
    if snap.is_empty() {
        assert!(steps.is_empty());
        return;
    }
    assert!(!steps.is_empty(), "non-empty snapshot yields an itinerary");
    assert_eq!(steps[0].t_start, 0.0, "itinerary starts at t = 0");
    let last = steps.len() - 1;
    assert_eq!(steps[last].t_end, 1.0, "itinerary ends at t = 1");
    for w in steps.windows(2) {
        assert_eq!(w[0].t_end, w[1].t_start, "steps tile without gaps");
    }
    for s in &steps {
        assert!(s.t_start < s.t_end, "no empty steps after coalescing");
    }
}

/// Writer role: a deterministic churn of inserts/removes over its own
/// handle pool, publishing via threshold and explicit refresh barriers.
fn writer_role(
    server: &SkylineServer,
    mut pool: Vec<Handle>,
    ops: usize,
    refresh_every: usize,
    seed: u64,
) -> u64 {
    let mut rng = Rng::new(seed);
    let mut applied = 0u64;
    for op in 0..ops {
        if rng.next() % 5 < 2 && pool.len() > 8 {
            let victim = pool.swap_remove((rng.next() as usize) % pool.len());
            assert!(server.remove(victim), "writer owns every handle it removes");
        } else {
            pool.push(server.insert(grid_point(&mut rng)));
        }
        applied += 1;
        if refresh_every > 0 && (op + 1) % refresh_every == 0 {
            server.refresh();
        }
    }
    server.refresh();
    applied
}

/// Reader role: chase fresh snapshots and differentially verify a batch of
/// queries; sprinkles safe-zone and trace checks on top of the skyline
/// semantics.
fn reader_role(
    server: &SkylineServer,
    queries: usize,
    refresh_every: usize,
    seed: u64,
    check_global: bool,
    check_dynamic: bool,
) -> u64 {
    let mut rng = Rng::new(seed);
    let mut reader = server.reader();
    let mut snap = reader.snapshot();
    for i in 0..queries {
        if i % refresh_every == 0 {
            snap = reader.snapshot();
        }
        let q = odd_point(&mut rng);
        check_against_oracle(&snap, q, check_global, check_dynamic);
        if i % 16 == 0 {
            check_safe_zone(&snap, q);
        }
        if i % 64 == 0 {
            let b = odd_point(&mut rng);
            if b != q {
                check_trace(&snap, q, b);
            }
        }
    }
    queries as u64
}

/// ≥ 10k differentially verified queries against a server under live
/// mutation, quadrant + global semantics. Two phases: deterministic
/// interleaved rounds (meaningful at every thread count), then a
/// free-running writer racing four readers.
#[test]
fn stress_quadrant_global_under_churn() {
    let options = ServerOptions {
        with_global: true,
        rebuild_threshold: 24,
        ..ServerOptions::default()
    };
    let (server, handles) = seed_server(80, 0xA11CE, options);
    let cfg = ParallelConfig::from_env();
    let queries = AtomicU64::new(0);

    // Phase A: 25 rounds of (writer burst → barrier → 4 verified reader
    // batches). The barrier pins each round's content, so this phase is a
    // deterministic interleaving across epochs even on one thread.
    let mut phase_a_pool = handles.clone();
    for round in 0..25u64 {
        let mut rng = Rng::new(0xBEEF ^ round);
        for _ in 0..4 {
            if rng.next() % 5 < 2 && phase_a_pool.len() > 8 {
                let victim = phase_a_pool.swap_remove((rng.next() as usize) % phase_a_pool.len());
                assert!(server.remove(victim));
            } else {
                phase_a_pool.push(server.insert(grid_point(&mut rng)));
            }
        }
        server.refresh();
        let done = parallel::map_indexed(&cfg, 4, |r| {
            reader_role(&server, 24, 8, splitmix(round) ^ (r as u64), true, false)
        });
        queries.fetch_add(done.iter().sum::<u64>(), Ordering::Relaxed);
    }

    // Phase B: free-running roles — role 0 churns and publishes while
    // roles 1–4 verify continuously against whatever epoch they pinned.
    let writer_pool = phase_a_pool;
    let done = parallel::map_indexed(&cfg, 5, |role| {
        if role == 0 {
            writer_role(&server, writer_pool.clone(), 120, 6, 0xD00D);
            0
        } else {
            reader_role(&server, 2000, 10, 0xF00 ^ (role as u64), true, false)
        }
    });
    queries.fetch_add(done.iter().sum::<u64>(), Ordering::Relaxed);

    let total = queries.load(Ordering::Relaxed);
    assert!(
        total >= 10_000,
        "harness must verify at least 10k queries, got {total}"
    );
    assert!(server.epoch() > 25, "the run published many epochs");
}

/// Dynamic semantics under churn: small dataset (the dynamic diagram is
/// O(n⁴) cells), all three semantics verified per query.
#[test]
fn stress_dynamic_semantics_under_churn() {
    let options = ServerOptions {
        with_global: true,
        with_dynamic: true,
        rebuild_threshold: 6,
        ..ServerOptions::default()
    };
    let (server, handles) = seed_server(18, 0xD14, options);
    let cfg = ParallelConfig::from_env();
    let done = parallel::map_indexed(&cfg, 5, |role| {
        if role == 0 {
            writer_role(&server, handles.clone(), 40, 4, 0xCAFE);
            0
        } else {
            reader_role(&server, 300, 12, 0x9 ^ (role as u64), true, true)
        }
    });
    assert_eq!(done[1..].iter().sum::<u64>(), 1200);
}

/// Cache-enabled and cache-disabled servers answer the same mutating
/// workload with bit-for-bit identical checksums — across two seeds.
#[test]
fn cached_and_uncached_checksums_agree() {
    for seed in [7u64, 0x5eed] {
        let spec = WorkloadSpec {
            readers: 4,
            rounds: 4,
            queries_per_reader: 120,
            updates_per_round: 10,
            domain: 4 * SPAN as i64,
            seed,
            mix: QueryMix {
                quadrant: 5,
                global: 2,
                dynamic: 0,
                safe_zone: 2,
                trace: 1,
            },
        };
        let cached = ServerOptions {
            with_global: true,
            ..ServerOptions::default()
        };
        let uncached = ServerOptions {
            cache_slots: 0,
            ..cached
        };
        let (a, ha) = seed_server(64, seed, cached);
        let (b, hb) = seed_server(64, seed, uncached);
        let ra = workload::run(&a, &spec, &ha);
        let rb = workload::run(&b, &spec, &hb);
        assert_eq!(
            ra.checksum, rb.checksum,
            "cache on/off diverged for seed {seed}"
        );
        assert_eq!(rb.cache.lookups(), 0, "disabled cache observes nothing");
        assert_eq!(ra.queries, rb.queries);
    }
}

/// A reader pinned to an old epoch keeps answering from it, bit-for-bit,
/// while the writer publishes far past it.
#[test]
fn pinned_epoch_is_immutable_under_publication() {
    let (server, _) = seed_server(
        40,
        0x1DEA,
        ServerOptions {
            rebuild_threshold: 4,
            ..ServerOptions::default()
        },
    );
    let mut reader = server.reader();
    let pinned = reader.snapshot();
    let pinned_epoch = pinned.epoch();
    let mut rng = Rng::new(0x777);
    let probes: Vec<Point> = (0..32).map(|_| odd_point(&mut rng)).collect();
    let before: Vec<Vec<Handle>> = probes
        .iter()
        .map(|&q| pinned.quadrant(q).to_vec())
        .collect();

    for _ in 0..40 {
        server.insert(grid_point(&mut rng));
    }
    server.refresh();
    assert!(server.epoch() > pinned_epoch);

    for (q, old) in probes.iter().zip(&before) {
        assert_eq!(
            pinned.quadrant(*q).as_ref(),
            old.as_slice(),
            "pinned epoch changed under publication"
        );
        check_against_oracle(&pinned, *q, true, false);
    }
    // After refreshing, the reader sees the new epoch's content exactly.
    let fresh = reader.snapshot();
    assert!(fresh.epoch() > pinned_epoch);
    for &q in &probes {
        check_against_oracle(&fresh, q, true, false);
    }
}

/// The refresh barrier makes every prior update visible: nothing before,
/// everything after.
#[test]
fn refresh_is_a_visibility_barrier() {
    let (server, _) = seed_server(30, 0xBA2, ServerOptions::default());
    let len_before = server.latest().len();
    let mut rng = Rng::new(0x42);
    for _ in 0..8 {
        server.insert(grid_point(&mut rng));
    }
    assert_eq!(
        server.latest().len(),
        len_before,
        "below threshold, updates stay invisible"
    );
    server.refresh();
    assert_eq!(server.latest().len(), len_before + 8);
    let snap = server.latest();
    for _ in 0..64 {
        check_against_oracle(&snap, odd_point(&mut rng), true, false);
    }
}
