//! Telemetry differential for the serving layer: driving the same
//! deterministic workload with a trace-recording session active must
//! produce bit-for-bit the same checksum as running it with telemetry
//! idle. Spans observe the serving pipeline; they must never steer it.
//!
//! Runs under the CI `SKYLINE_THREADS ∈ {0, 1, 4}` matrix like the stress
//! harness; the reader fan-out inside each workload is varied here too so
//! the sequential degeneration and the genuinely concurrent schedule are
//! both covered at every matrix point.

use skyline_core::geometry::Dataset;
use skyline_core::telemetry;
use skyline_serve::workload::{self, QueryMix, WorkloadSpec};
use skyline_serve::{ServerOptions, SkylineServer};

/// SplitMix64 step for deterministic dataset generation.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed_server(n: usize, seed: u64) -> (SkylineServer, Vec<skyline_core::maintained::Handle>) {
    let mut state = seed;
    let mut next = move || {
        state = splitmix(state);
        state
    };
    let mut coords: Vec<(i64, i64)> = Vec::new();
    while coords.len() < n {
        let p = (4 * (next() % 161) as i64, 4 * (next() % 161) as i64);
        if !coords.contains(&p) {
            coords.push(p);
        }
    }
    let ds = Dataset::from_coords(coords).expect("generated grid coords are valid");
    let options = ServerOptions {
        with_global: true,
        rebuild_threshold: 8,
        ..ServerOptions::default()
    };
    SkylineServer::with_dataset(&ds, options)
}

/// One full workload run on a freshly seeded server; `record` wraps the
/// run in a telemetry session and returns the span count alongside the
/// checksum.
fn run_workload(seed: u64, readers: usize, record: bool) -> (u64, usize) {
    let (server, handles) = seed_server(48, seed);
    let spec = WorkloadSpec {
        readers,
        rounds: 3,
        queries_per_reader: 60,
        updates_per_round: 6,
        domain: 4 * 160,
        seed,
        mix: QueryMix::default(),
    };
    if record {
        telemetry::start_recording();
    }
    let report = workload::run(&server, &spec, &handles);
    let spans = if record {
        telemetry::stop_recording().len()
    } else {
        0
    };
    (report.checksum, spans)
}

/// The workload checksum is identical with a recording session active and
/// with telemetry idle, across reader fan-outs and seeds.
#[test]
fn workload_checksums_agree_with_recording_on_and_off() {
    for seed in [7u64, 0x5eed] {
        for readers in [1usize, 4] {
            let (plain, _) = run_workload(seed, readers, false);
            let (recorded, spans) = run_workload(seed, readers, true);
            assert_eq!(
                plain, recorded,
                "recording changed the workload checksum (seed {seed}, readers {readers})"
            );
            if cfg!(feature = "telemetry") {
                assert!(
                    spans > 0,
                    "a recorded serving run must emit spans (seed {seed}, readers {readers})"
                );
            } else {
                assert_eq!(spans, 0, "feature-off probes must be no-ops");
            }
        }
    }
}

/// The serving pipeline feeds the metrics registry: after a workload with
/// queries and publications, the serve-side counters are populated.
#[test]
fn serving_metrics_are_populated_by_a_workload() {
    if !cfg!(feature = "telemetry") {
        return;
    }
    // Do not reset the registry here: the sibling test runs concurrently in
    // this binary and its counts may interleave. Counters only grow, so a
    // lower-bound check is race-free.
    let (server, handles) = seed_server(32, 0xFACE);
    let spec = WorkloadSpec {
        readers: 2,
        rounds: 2,
        queries_per_reader: 40,
        updates_per_round: 5,
        domain: 4 * 160,
        seed: 0xFACE,
        mix: QueryMix::default(),
    };
    let report = workload::run(&server, &spec, &handles);
    assert!(report.queries > 0);

    let snapshot = telemetry::metrics_snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert!(
        counter("workload.queries") >= report.queries,
        "workload.queries counter below this run's own query count"
    );
    assert!(counter("epoch.publish") >= 1, "publications went uncounted");
    assert!(
        counter("maintained.rebuilds") >= 1,
        "rebuilds went uncounted"
    );
    let rebuild_us = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve.rebuild_us")
        .expect("rebuild latency histogram must exist after a publication");
    assert!(rebuild_us.count >= 1);
}
