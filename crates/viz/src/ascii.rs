//! Terminal rendering: one character per skyline cell, letters keyed by
//! distinct result, so polyominoes are visible as same-letter blobs.

use skyline_core::diagram::CellDiagram;
use skyline_core::dynamic::SubcellDiagram;
use skyline_core::result_set::ResultId;

const GLYPHS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

fn glyph_for(rid: ResultId, empty: ResultId) -> char {
    if rid == empty {
        '.'
    } else {
        GLYPHS[(rid.0 as usize - 1) % GLYPHS.len()] as char
    }
}

/// Renders a cell diagram as rows of glyphs, topmost row first (matching the
/// usual plot orientation). Empty results render as `.`; distinct results
/// cycle through letters and digits, so two cells sharing a glyph *usually*
/// share a result (always, when there are at most 62 distinct results).
///
/// ```
/// use skyline_core::geometry::Dataset;
/// use skyline_core::quadrant::QuadrantEngine;
///
/// let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
/// let diagram = QuadrantEngine::Baseline.build(&ds);
/// let art = skyline_viz::ascii::render_cells(&diagram);
/// // Top row empty; the {p1} region ('b') wraps around p1's cell; the
/// // bottom-left cell sees the skyline {p0} ('a').
/// assert_eq!(art, "...\nbb.\nab.\n");
/// ```
pub fn render_cells(diagram: &CellDiagram) -> String {
    let width = diagram.grid().nx() as usize + 1;
    let height = diagram.grid().ny() as usize + 1;
    let empty = diagram.results().empty();
    let mut out = String::with_capacity((width + 1) * height);
    for j in (0..height as u32).rev() {
        for i in 0..width as u32 {
            out.push(glyph_for(diagram.result_id((i, j)), empty));
        }
        out.push('\n');
    }
    out
}

/// Renders a dynamic subcell diagram the same way. Subcell grids grow as
/// `O(n²)` per axis — prefer small datasets for terminal output.
pub fn render_subcells(diagram: &SubcellDiagram) -> String {
    let width = diagram.grid().mx() as usize + 1;
    let height = diagram.grid().my() as usize + 1;
    let empty = diagram.results().empty();
    let mut out = String::with_capacity((width + 1) * height);
    for j in (0..height as u32).rev() {
        for i in 0..width as u32 {
            out.push(glyph_for(diagram.result_id((i, j)), empty));
        }
        out.push('\n');
    }
    out
}

/// Unicode block glyphs for [`sparkline`], lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line block-glyph sparkline, one glyph per
/// value: `▁` for zero, then `▂`..`█` scaled to the series maximum (the
/// maximum always renders as `█`). Pure text in, text out — `skydiag top`
/// uses it for live histogram-bucket deltas, but any non-negative series
/// works.
///
/// ```
/// assert_eq!(skyline_viz::ascii::sparkline(&[0, 1, 4, 8, 3]), "▁▂▅█▄");
/// assert_eq!(skyline_viz::ascii::sparkline(&[0, 0]), "▁▁");
/// assert_eq!(skyline_viz::ascii::sparkline(&[]), "");
/// ```
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                SPARKS[0]
            } else {
                // Ceiling scale into 1..=7 so any nonzero value is visibly
                // above the zero glyph and the maximum saturates.
                let level = (v as u128 * 7).div_ceil(max as u128) as usize;
                SPARKS[level.clamp(1, 7)]
            }
        })
        .collect()
}

/// A legend mapping each glyph to its skyline result, in first-appearance
/// (scanning) order, for the cell diagram produced by [`render_cells`].
pub fn legend(diagram: &CellDiagram) -> String {
    use std::fmt::Write as _;
    let empty = diagram.results().empty();
    let mut seen = std::collections::HashSet::new();
    let mut out = String::new();
    for &rid in diagram.cell_results() {
        if rid == empty || !seen.insert(rid) {
            continue;
        }
        let ids: Vec<String> = diagram
            .results()
            .get(rid)
            .iter()
            .map(|id| id.to_string())
            .collect();
        writeln!(out, "{} = {{{}}}", glyph_for(rid, empty), ids.join(", "))
            .expect("string writes cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::geometry::Dataset;
    use skyline_core::quadrant::QuadrantEngine;

    #[test]
    fn dimensions_and_orientation() {
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let art = render_cells(&d);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 3));
        // Top row (beyond both points) is all empty.
        assert_eq!(rows[0], "...");
        // Bottom-left cell sees the whole skyline — not empty.
        assert_ne!(&rows[2][0..1], ".");
    }

    #[test]
    fn equal_results_share_glyphs() {
        let ds = Dataset::from_coords([(0, 0), (10, 10), (20, 20)]).unwrap();
        let d = QuadrantEngine::Scanning.build(&ds);
        let art = render_cells(&d);
        let rows: Vec<&str> = art.lines().collect();
        let empty = d.results().empty();
        for j in 0..=d.grid().ny() {
            for i in 0..=d.grid().nx() {
                let ch = rows[(d.grid().ny() - j) as usize].as_bytes()[i as usize] as char;
                let rid = d.result_id((i, j));
                if rid == empty {
                    assert_eq!(ch, '.');
                } else {
                    assert_eq!(ch, super::glyph_for(rid, empty));
                }
            }
        }
    }

    #[test]
    fn legend_lists_every_distinct_nonempty_result() {
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let legend = legend(&d);
        let distinct = d.stats().distinct_results - 1; // minus empty
        assert_eq!(legend.lines().count(), distinct);
        assert!(legend.contains("p0"));
    }

    #[test]
    fn sparkline_scales_to_the_maximum() {
        let art = sparkline(&[0, 1, 2, 4, 7, 14]);
        assert_eq!(art.chars().count(), 6);
        assert!(art.starts_with('▁'), "{art}");
        assert!(art.ends_with('█'), "{art}");
        // Any nonzero value sits strictly above the zero glyph.
        assert!(!art[3..].contains('▁'), "{art}");
        // A constant nonzero series saturates.
        assert_eq!(sparkline(&[5, 5, 5]), "███");
    }

    #[test]
    fn subcell_rendering_has_subcell_dimensions() {
        let ds = Dataset::from_coords([(0, 0), (4, 4)]).unwrap();
        let d = skyline_core::dynamic::DynamicEngine::Scanning.build(&ds);
        let art = render_subcells(&d);
        assert_eq!(art.lines().count(), d.grid().my() as usize + 1);
    }
}
