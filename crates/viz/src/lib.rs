//! # skyline-viz
//!
//! Rendering for skyline diagrams: [`svg`] produces figures comparable to
//! the paper's Figures 3/8/9 (cells shaded by result, polyomino boundaries,
//! seed points); [`ascii`] gives a quick terminal view for the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod outlines;
pub mod report;
pub mod svg;
