//! Polyomino outline rendering: closed `<path>` loops from the core's
//! boundary tracer — the publication-quality version of the edge-by-edge
//! overlay in [`crate::svg::render_merged_diagram`].

use std::fmt::Write as _;

use skyline_core::diagram::boundary::{boundary_loops, ClipBox};
use skyline_core::diagram::{CellDiagram, MergedDiagram};
use skyline_core::geometry::Dataset;

use crate::svg::SvgOptions;

/// Renders the diagram with polyomino outlines as closed SVG paths (and the
/// usual shaded cells underneath).
pub fn render_outlined_diagram(
    dataset: &Dataset,
    diagram: &CellDiagram,
    merged: &MergedDiagram,
    options: &SvgOptions,
) -> String {
    let base = crate::svg::render_cell_diagram(dataset, diagram, options);

    let grid = diagram.grid();
    let clip = ClipBox::around(grid);
    let m = options.margin as f64;
    let xs = grid.x_lines();
    let ys = grid.y_lines();
    let (x0, x1) = (xs[0] as f64 - m, xs[xs.len() - 1] as f64 + m);
    let (_y0, y1) = (ys[0] as f64 - m, ys[ys.len() - 1] as f64 + m);
    let scale = options.width_px / (x1 - x0);
    let px = |x: i64| (x as f64 - x0) * scale;
    let py = |y: i64| (y1 - y as f64) * scale;

    let mut overlay = String::new();
    for poly in merged.iter() {
        for walk in boundary_loops(grid, poly.cells, clip) {
            let mut d = String::new();
            for (k, v) in walk.iter().enumerate() {
                let cmd = if k == 0 { 'M' } else { 'L' };
                write!(d, "{cmd}{:.2} {:.2} ", px(v.x), py(v.y))
                    .expect("string writes cannot fail");
            }
            d.push('Z');
            writeln!(
                overlay,
                r##"<path d="{d}" fill="none" stroke="#000" stroke-width="1.6"/>"##
            )
            .expect("string writes cannot fail");
        }
    }
    base.replace("</svg>", &format!("{overlay}</svg>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::diagram::merge::merge;
    use skyline_core::quadrant::QuadrantEngine;

    #[test]
    fn outlines_produce_one_path_per_loop() {
        let ds = Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap();
        let diagram = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&diagram);
        let svg = render_outlined_diagram(&ds, &diagram, &merged, &SvgOptions::default());
        // At least one closed path per polyomino.
        assert!(svg.matches("<path").count() >= merged.len());
        assert!(svg.contains('Z'));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn paths_are_well_formed() {
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let diagram = QuadrantEngine::Baseline.build(&ds);
        let merged = merge(&diagram);
        let svg = render_outlined_diagram(&ds, &diagram, &merged, &SvgOptions::default());
        for path in svg.split("<path").skip(1) {
            let d_attr = path
                .split("d=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            assert!(d_attr.starts_with('M'));
            assert!(d_attr.ends_with('Z'));
        }
    }
}
