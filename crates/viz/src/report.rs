//! Self-contained HTML reports: one page per dataset with its profile, the
//! diagram statistics, and the embedded SVG figures — the artifact a user
//! shares after running an analysis (`skydiag report`).

use std::fmt::Write as _;

use skyline_core::diagram::merge::merge;
use skyline_core::geometry::Dataset;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::stats::DatasetProfile;

use crate::outlines::render_outlined_diagram;
use crate::svg::SvgOptions;

fn esc(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a full HTML report for a dataset: profile table, diagram
/// statistics, and the outlined quadrant diagram inline.
pub fn html_report(title: &str, dataset: &Dataset, engine: QuadrantEngine) -> String {
    let profile = DatasetProfile::new(dataset);
    let diagram = engine.build(dataset);
    let merged = merge(&diagram);
    let stats = diagram.stats();
    let svg = render_outlined_diagram(dataset, &diagram, &merged, &SvgOptions::default());

    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(html, "<title>{}</title>", esc(title));
    html.push_str(
        "<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; }
table { border-collapse: collapse; margin: 1rem 0; }
td, th { border: 1px solid #ccc; padding: 0.3rem 0.8rem; text-align: right; }
th { background: #f2f2f2; }
figure { margin: 1.5rem 0; }
</style></head><body>\n",
    );
    let _ = writeln!(html, "<h1>{}</h1>", esc(title));

    html.push_str("<h2>Dataset profile</h2>\n<table><tr><th>metric</th><th>value</th></tr>\n");
    let profile_rows = [
        ("points", profile.n.to_string()),
        (
            "distinct x / y",
            format!("{} / {}", profile.distinct_x, profile.distinct_y),
        ),
        ("skyline size", profile.skyline_size.to_string()),
        ("skyline layers", profile.layer_count.to_string()),
        (
            "dominance density",
            format!("{:.3}", profile.dominance_density),
        ),
        (
            "attribute correlation",
            format!("{:+.3}", profile.correlation),
        ),
    ];
    for (k, v) in profile_rows {
        let _ = writeln!(html, "<tr><td>{}</td><td>{}</td></tr>", esc(k), esc(&v));
    }
    html.push_str("</table>\n");

    html.push_str("<h2>Skyline diagram</h2>\n<table><tr><th>metric</th><th>value</th></tr>\n");
    let diagram_rows = [
        ("engine", engine.name().to_string()),
        ("cells", stats.cell_count.to_string()),
        ("polyominoes", merged.len().to_string()),
        (
            "compression (polyominoes / cells)",
            format!("{:.3}", merged.len() as f64 / stats.cell_count as f64),
        ),
        (
            "avg skyline size per cell",
            format!("{:.2}", stats.avg_result_len),
        ),
        ("max skyline size", stats.max_result_len.to_string()),
        ("interned ids", stats.interned_ids.to_string()),
    ];
    for (k, v) in diagram_rows {
        let _ = writeln!(html, "<tr><td>{}</td><td>{}</td></tr>", esc(k), esc(&v));
    }
    html.push_str("</table>\n");

    html.push_str("<h2>Diagram</h2>\n<figure>\n");
    html.push_str(&svg);
    html.push_str("</figure>\n</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotel() -> Dataset {
        Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap()
    }

    #[test]
    fn report_is_complete_html() {
        let html = html_report("Hotels <test>", &hotel(), QuadrantEngine::Sweeping);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        // Title is escaped.
        assert!(html.contains("Hotels &lt;test&gt;"));
        assert!(!html.contains("Hotels <test>"));
        // Contains both tables and the inline SVG.
        assert!(html.contains("dominance density"));
        assert!(html.contains("polyominoes"));
        assert!(html.contains("<svg"));
    }

    #[test]
    fn report_numbers_match_direct_computation() {
        let ds = hotel();
        let html = html_report("x", &ds, QuadrantEngine::Baseline);
        let diagram = QuadrantEngine::Baseline.build(&ds);
        let merged = merge(&diagram);
        assert!(html.contains(&format!("<td>{}</td>", diagram.stats().cell_count)));
        assert!(html.contains(&format!("<td>{}</td>", merged.len())));
        assert!(html.contains("<td>11</td>")); // point count
    }
}
