//! SVG rendering of skyline diagrams: cells shaded by result, polyomino
//! boundaries emphasized, seed points drawn on top — the library's
//! counterpart of the paper's Figures 3, 8 and 9.

use std::fmt::Write as _;

use skyline_core::diagram::{CellDiagram, MergedDiagram};
use skyline_core::dynamic::SubcellDiagram;
use skyline_core::geometry::{Coord, Dataset};
use skyline_core::result_set::ResultId;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Canvas width in pixels (height follows the data aspect ratio).
    pub width_px: f64,
    /// Margin around the data bounding box, in data units.
    pub margin: Coord,
    /// Draw the seed points.
    pub draw_points: bool,
    /// Point radius in pixels.
    pub point_radius: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 640.0,
            margin: 2,
            draw_points: true,
            point_radius: 3.5,
        }
    }
}

/// A muted qualitative palette; results cycle through it by interner id, so
/// equal results always share a color.
const PALETTE: [&str; 12] = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5",
    "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
];

fn fill_for(rid: ResultId, empty: ResultId) -> &'static str {
    if rid == empty {
        "#f7f7f7"
    } else {
        PALETTE[(rid.0 as usize - 1) % PALETTE.len()]
    }
}

struct Mapper {
    x0: f64,
    y1: f64,
    scale: f64,
}

impl Mapper {
    fn x(&self, v: f64) -> f64 {
        (v - self.x0) * self.scale
    }

    fn y(&self, v: f64) -> f64 {
        (self.y1 - v) * self.scale // flip: SVG y grows downward
    }
}

/// Boundaries of the slabs, clipped to the padded bounding box.
fn slab_edges(lines: &[Coord], lo: f64, hi: f64) -> Vec<f64> {
    let mut edges = Vec::with_capacity(lines.len() + 2);
    edges.push(lo);
    edges.extend(lines.iter().map(|&v| v as f64));
    edges.push(hi);
    edges
}

fn render_grid_diagram(
    x_lines_raw: &[Coord],
    y_lines_raw: &[Coord],
    line_scale: f64,
    result_of: impl Fn(u32, u32) -> ResultId,
    empty: ResultId,
    points: Option<&Dataset>,
    options: &SvgOptions,
) -> String {
    let xs: Vec<Coord> = x_lines_raw.to_vec();
    let ys: Vec<Coord> = y_lines_raw.to_vec();
    let to_data = |v: Coord| v as f64 / line_scale;

    let (xmin, xmax) = (to_data(xs[0]), to_data(xs[xs.len() - 1]));
    let (ymin, ymax) = (to_data(ys[0]), to_data(ys[ys.len() - 1]));
    let m = options.margin as f64;
    let (x0, x1) = (xmin - m, xmax + m);
    let (y0, y1) = (ymin - m, ymax + m);
    let scale = options.width_px / (x1 - x0);
    let height_px = (y1 - y0) * scale;
    let map = Mapper { x0, y1, scale };

    let xe: Vec<f64> = {
        let mut e = vec![x0];
        e.extend(xs.iter().map(|&v| to_data(v)));
        e.push(x1);
        e
    };
    let ye: Vec<f64> = {
        let mut e = vec![y0];
        e.extend(ys.iter().map(|&v| to_data(v)));
        e.push(y1);
        e
    };

    let mut svg = String::new();
    writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.2} {:.2}">"#,
        options.width_px, height_px, options.width_px, height_px
    )
    .expect("string writes cannot fail");

    // Cells.
    for j in 0..ye.len() - 1 {
        for i in 0..xe.len() - 1 {
            let rid = result_of(i as u32, j as u32);
            writeln!(
                svg,
                r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" stroke="#999" stroke-width="0.5"/>"##,
                map.x(xe[i]),
                map.y(ye[j + 1]),
                (xe[i + 1] - xe[i]) * scale,
                (ye[j + 1] - ye[j]) * scale,
                fill_for(rid, empty),
            )
            .expect("string writes cannot fail");
        }
    }

    // Seed points.
    if let (Some(ds), true) = (points, options.draw_points) {
        for (id, p) in ds.iter() {
            writeln!(
                svg,
                r##"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="#222"/><text x="{:.2}" y="{:.2}" font-size="10" fill="#222">{}</text>"##,
                map.x(p.x as f64),
                map.y(p.y as f64),
                options.point_radius,
                map.x(p.x as f64) + 5.0,
                map.y(p.y as f64) - 4.0,
                id,
            )
            .expect("string writes cannot fail");
        }
    }

    svg.push_str("</svg>\n");
    svg
}

/// Renders an arbitrary result grid — the escape hatch for diagram-like
/// structures outside `skyline-core` (e.g. the reverse-skyline diagram in
/// `skyline-apps`). `line_scale` divides raw line positions back into data
/// coordinates (1 for raw, 2 for doubled).
#[allow(clippy::too_many_arguments)]
pub fn render_result_grid(
    x_lines: &[Coord],
    y_lines: &[Coord],
    line_scale: f64,
    result_of: impl Fn(u32, u32) -> ResultId,
    empty: ResultId,
    points: Option<&Dataset>,
    options: &SvgOptions,
) -> String {
    render_grid_diagram(
        x_lines, y_lines, line_scale, result_of, empty, points, options,
    )
}

/// Renders a quadrant/global cell diagram.
pub fn render_cell_diagram(
    dataset: &Dataset,
    diagram: &CellDiagram,
    options: &SvgOptions,
) -> String {
    render_grid_diagram(
        diagram.grid().x_lines(),
        diagram.grid().y_lines(),
        1.0,
        |i, j| diagram.result_id((i, j)),
        diagram.results().empty(),
        Some(dataset),
        options,
    )
}

/// Renders a dynamic subcell diagram (lines live in doubled coordinates;
/// they are scaled back for display).
pub fn render_subcell_diagram(
    dataset: &Dataset,
    diagram: &SubcellDiagram,
    options: &SvgOptions,
) -> String {
    render_grid_diagram(
        diagram.grid().x_lines(),
        diagram.grid().y_lines(),
        2.0,
        |i, j| diagram.result_id((i, j)),
        diagram.results().empty(),
        Some(dataset),
        options,
    )
}

/// Renders polyomino boundaries on top of a cell diagram: edges between
/// cells of different polyominoes are stroked heavily, reproducing the
/// staircase outlines of the paper's Figure 8.
pub fn render_merged_diagram(
    dataset: &Dataset,
    diagram: &CellDiagram,
    merged: &MergedDiagram,
    options: &SvgOptions,
) -> String {
    let base = render_cell_diagram(dataset, diagram, options);
    // Recompute the mapping exactly as render_grid_diagram does.
    let xs = diagram.grid().x_lines();
    let ys = diagram.grid().y_lines();
    let m = options.margin as f64;
    let (x0, x1) = (xs[0] as f64 - m, xs[xs.len() - 1] as f64 + m);
    let (y0v, y1) = (ys[0] as f64 - m, ys[ys.len() - 1] as f64 + m);
    let scale = options.width_px / (x1 - x0);
    let map = Mapper { x0, y1, scale };
    let xe = slab_edges(xs, x0, x1);
    let ye = slab_edges(ys, y0v, y1);

    let width = diagram.grid().nx() as usize + 1;
    let height = diagram.grid().ny() as usize + 1;
    let poly = merged.cell_to_polyomino();
    let mut overlay = String::new();
    for j in 0..height {
        for i in 0..width {
            let idx = j * width + i;
            // Right edge.
            if i + 1 < width && poly[idx] != poly[idx + 1] {
                writeln!(
                    overlay,
                    r##"<line x1="{0:.2}" y1="{1:.2}" x2="{0:.2}" y2="{2:.2}" stroke="#000" stroke-width="1.6"/>"##,
                    map.x(xe[i + 1]),
                    map.y(ye[j]),
                    map.y(ye[j + 1]),
                )
                .expect("string writes cannot fail");
            }
            // Top edge.
            if j + 1 < height && poly[idx] != poly[idx + width] {
                writeln!(
                    overlay,
                    r##"<line x1="{0:.2}" y1="{2:.2}" x2="{1:.2}" y2="{2:.2}" stroke="#000" stroke-width="1.6"/>"##,
                    map.x(xe[i]),
                    map.x(xe[i + 1]),
                    map.y(ye[j + 1]),
                )
                .expect("string writes cannot fail");
            }
        }
    }
    // Splice the overlay before the closing tag.
    base.replace("</svg>", &format!("{overlay}</svg>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::diagram::merge::merge;
    use skyline_core::dynamic::DynamicEngine;
    use skyline_core::quadrant::QuadrantEngine;

    fn hotel() -> Dataset {
        Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap()
    }

    #[test]
    fn cell_svg_is_well_formed_and_complete() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let svg = render_cell_diagram(&ds, &d, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, d.grid().cell_count());
        let circles = svg.matches("<circle").count();
        assert_eq!(circles, ds.len());
    }

    #[test]
    fn merged_overlay_adds_boundary_lines() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        let svg = render_merged_diagram(&ds, &d, &merged, &SvgOptions::default());
        assert!(svg.matches("<line").count() > 0);
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn subcell_svg_renders_all_subcells() {
        let ds = Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).unwrap();
        let d = DynamicEngine::Scanning.build(&ds);
        let svg = render_subcell_diagram(&ds, &d, &SvgOptions::default());
        assert_eq!(svg.matches("<rect").count(), d.grid().subcell_count());
    }

    #[test]
    fn options_control_points() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let options = SvgOptions {
            draw_points: false,
            ..SvgOptions::default()
        };
        let svg = render_cell_diagram(&ds, &d, &options);
        assert_eq!(svg.matches("<circle").count(), 0);
    }

    #[test]
    fn equal_results_share_fill_colors() {
        let ds = hotel();
        let d = QuadrantEngine::Scanning.build(&ds);
        // Two cells with the same ResultId must produce the same fill.
        let empty = d.results().empty();
        let a = d.result_id((0, 0));
        assert_ne!(fill_for(a, empty), fill_for(empty, empty));
        assert_eq!(fill_for(a, empty), fill_for(a, empty));
    }
}
