//! Parser for `lint.toml`, the per-rule allowlist.
//!
//! The file is a sequence of `[[allow]]` tables with string values only —
//! a deliberately tiny TOML subset, parsed by hand because the workspace
//! builds with no registry access. Anything outside that subset is a hard
//! error so typos cannot silently disable an entry.

/// One allowlist entry: suppresses findings of `rule` in `path` on lines
/// containing `line_contains`, with a human justification in `reason`.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule id the entry applies to (e.g. `no-unwrap`).
    pub rule: String,
    /// Workspace-relative path of the file, with forward slashes.
    pub path: String,
    /// Substring of the offending source line; scopes the entry to
    /// specific findings so it goes stale when the code changes.
    pub line_contains: String,
    /// Why the violation is acceptable. Required — an allowlist entry
    /// without a justification is a config error.
    pub reason: String,
    /// Line in lint.toml where the entry starts, for error messages.
    pub toml_line: u32,
}

/// Parses the allowlist, or returns a `line: message` error string.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx
            .checked_add(1)
            .and_then(|n| u32::try_from(n).ok())
            .unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = current.take() {
                finish(entry, &mut entries)?;
            }
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                line_contains: String::new(),
                reason: String::new(),
                toml_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{lineno}: expected `key = \"value\"` or `[[allow]]`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "{lineno}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let value = parse_string(value.trim())
            .ok_or_else(|| format!("{lineno}: value must be a double-quoted string"))?;
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "line_contains" => entry.line_contains = value,
            "reason" => entry.reason = value,
            other => return Err(format!("{lineno}: unknown key `{other}` in [[allow]]")),
        }
    }
    if let Some(entry) = current.take() {
        finish(entry, &mut entries)?;
    }
    Ok(entries)
}

fn finish(entry: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    let missing = [
        ("rule", entry.rule.is_empty()),
        ("path", entry.path.is_empty()),
        ("line_contains", entry.line_contains.is_empty()),
        ("reason", entry.reason.is_empty()),
    ];
    for (name, is_missing) in missing {
        if is_missing {
            return Err(format!(
                "{}: [[allow]] entry is missing required key `{name}`",
                entry.toml_line
            ));
        }
    }
    entries.push(entry);
    Ok(())
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Only trailing whitespace or a comment may follow.
                let rest = chars.as_str().trim_start();
                return (rest.is_empty() || rest.starts_with('#')).then_some(out);
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let src = r#"
# allowlist
[[allow]]
rule = "no-unwrap"
path = "crates/core/src/lib.rs"
line_contains = "foo.unwrap()"
reason = "holds by construction"  # trailing comment

[[allow]]
rule = "no-as-cast"
path = "crates/core/src/geometry/grid.rs"
line_contains = "x as u32"
reason = "bounded by grid side"
"#;
        let entries = parse_allowlist(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "no-unwrap");
        assert_eq!(entries[1].line_contains, "x as u32");
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "[[allow]]\nrule = \"r\"\npath = \"p\"\nline_contains = \"l\"\n";
        let err = parse_allowlist(src).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let src = "[[allow]]\nrule = \"r\"\nwhatever = \"x\"\n";
        assert!(parse_allowlist(src).is_err());
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let src = "[[allow]]\nrule = no-unwrap\n";
        assert!(parse_allowlist(src).is_err());
    }
}
