//! A small Rust lexer for the lint pass.
//!
//! The registry (and therefore `syn`) is unreachable in this workspace's
//! hermetic build environment, so the lints walk a hand-rolled token stream
//! instead of a real AST. The lexer understands exactly as much Rust as the
//! rules need: comments (line, nested block), string/char/byte literals
//! (including raw strings with hash fences), lifetimes vs char literals,
//! numbers with suffixes, identifiers (including `r#raw`), and punctuation.
//! Everything skippable is dropped; every kept token carries its 1-based
//! line number so findings print `file:line`.

/// What a token is, at the granularity the lint rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Any string/char/byte literal (content preserved for rules that
    /// inspect messages).
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Str`] this is the literal's *content*
    /// (quotes and raw-string fences stripped, escapes left as written).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == ch as u8
    }
}

/// Lexes a source file into lint-relevant tokens. Comments and whitespace
/// are dropped; literals are kept as single tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start_line = line;
                let (content, next) = scan_prefixed_literal(bytes, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            b'"' => {
                let start_line = line;
                let (content, next) = scan_string(bytes, i + 1, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            b'\'' => {
                // Char literal vs lifetime: a backslash or a `<x>'` pattern
                // means char; otherwise it is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') || is_char_literal(bytes, i) {
                    // Capture the line *before* scanning: the scanner bumps
                    // the counter on embedded newlines, and the token must
                    // carry the line its first character sits on.
                    let start_line = line;
                    let (content, next) = scan_char(bytes, i + 1, &mut line);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: content,
                        line: start_line,
                    });
                    i = next;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    if is_ident_continue(b)
                        || (b == b'.'
                            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                            && !bytes[start..i].contains(&b'.'))
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Does `r`/`b` at `i` begin a raw string, byte string, or raw identifier
/// we must scan as a unit (`r"`, `r#"`, `b"`, `br"`, `b'`, `r#ident`)?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    match rest {
        [b'r', b'"', ..] | [b'b', b'"', ..] | [b'b', b'\'', ..] => true,
        [b'r', b'#', ..] => {
            // `r#"..."#` raw string or `r#ident` raw identifier: only the
            // string form is a literal.
            let mut j = i + 1;
            while bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            bytes.get(j) == Some(&b'"')
        }
        [b'b', b'r', b'"', ..] => true,
        [b'b', b'r', b'#', ..] => {
            let mut j = i + 2;
            while bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            bytes.get(j) == Some(&b'"')
        }
        _ => false,
    }
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at the
/// prefix. Returns (content, index-after-literal).
fn scan_prefixed_literal(bytes: &[u8], i: usize, line: &mut u32) -> (String, usize) {
    let mut j = i;
    let mut raw = false;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        raw = true;
        j += 1;
    }
    if !raw {
        return if bytes[j] == b'\'' {
            scan_char(bytes, j + 1, line)
        } else {
            scan_string(bytes, j + 1, line)
        };
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    loop {
        if j >= bytes.len() {
            break;
        }
        if bytes[j] == b'"' {
            let fence = &bytes[j + 1..];
            if fence.len() >= hashes && fence[..hashes].iter().all(|&b| b == b'#') {
                let content = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                return (content, j + 1 + hashes);
            }
        }
        if bytes[j] == b'\n' {
            *line += 1;
        }
        j += 1;
    }
    (String::from_utf8_lossy(&bytes[start..j]).into_owned(), j)
}

/// Scans a non-raw string body starting just after the opening quote.
fn scan_string(bytes: &[u8], mut j: usize, line: &mut u32) -> (String, usize) {
    let start = j;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                return (
                    String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    j + 1,
                );
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (String::from_utf8_lossy(&bytes[start..j]).into_owned(), j)
}

/// Scans a char (or byte-char) body starting just after the opening quote.
fn scan_char(bytes: &[u8], mut j: usize, line: &mut u32) -> (String, usize) {
    let start = j;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => {
                return (
                    String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    j + 1,
                );
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (String::from_utf8_lossy(&bytes[start..j]).into_owned(), j)
}

/// True when the quote at `i` starts a char literal (as opposed to a
/// lifetime): one scalar (possibly multibyte) followed by a closing quote.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // Find the next quote within a small window; a lifetime has none before
    // a non-identifier character.
    let mut j = i + 1;
    let mut consumed = 0;
    while j < bytes.len() && consumed < 6 {
        if bytes[j] == b'\'' {
            return consumed > 0;
        }
        if !is_ident_continue(bytes[j]) && consumed > 0 {
            return false;
        }
        j += 1;
        consumed += 1;
    }
    false
}

/// Strips test-only regions from a token stream: any item annotated
/// `#[cfg(test)]` (typically `mod tests { … }`) and any `#[test]` function.
/// Lint rules apply to what remains — the library code.
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching_bracket(toks, i + 1) {
                Some(e) => e,
                None => {
                    out.push(toks[i].clone());
                    i += 1;
                    continue;
                }
            };
            if attr_is_test(&toks[i + 2..attr_end]) {
                // Skip the attribute, any further attributes, and the item.
                i = attr_end + 1;
                while toks.get(i).is_some_and(|t| t.is_punct('#'))
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching_bracket(toks, i + 1) {
                        Some(e) => i = e + 1,
                        None => break,
                    }
                }
                i = skip_item(toks, i);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Is this attribute body `cfg(test)` / `cfg(any(test, …))` / `test`?
fn attr_is_test(body: &[Tok]) -> bool {
    match body {
        [t] if t.is_ident("test") => true,
        [c, ..] if c.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index of the `]`/`}`/`)` matching the opener at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        "(" => ('(', ')'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Skips one item starting at `i`: to the end of its `{ … }` block, or past
/// a trailing `;` for block-less items.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        if toks[i].is_punct('{') {
            return matching_bracket(toks, i).map_or(toks.len(), |e| e + 1);
        }
        if toks[i].is_punct(';') {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_lifetimes() {
        let src = r####"
// line comment with .unwrap()
/* block /* nested */ still comment .unwrap() */
fn f<'a>(s: &'a str) -> char {
    let _msg = "not a real .unwrap() call";
    let _raw = r#"raw "quoted" .unwrap()"#;
    let _byte = b"bytes";
    let _c: char = '\'';
    'x'
}
"####;
        let toks = lex(src);
        let unwraps = toks.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 0, "unwrap only appears inside comments/strings");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "bytes"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == r"\'"));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn multi_hash_raw_fences_and_embedded_quotes() {
        // A `"#` inside an `r##"…"##` string must not close it; the fence
        // has to match hash-for-hash.
        let src = r###"let s = r##"inner "# not the end"##; let after = 1;"###;
        let toks = lex(src);
        let lit = toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("the raw string lexes as one literal token");
        assert_eq!(lit.text, r##"inner "# not the end"##);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn rule_patterns_inside_raw_strings_are_inert() {
        // Text that *looks* like lintable code must stay inside the string
        // token: none of these may surface as identifier tokens.
        let src = r####"
let a = r#"x.unwrap(); panic!("boom"); Ordering::SeqCst"#;
let b = r##"std::sync::atomic::AtomicU64 debug_assert!(v.pop())"##;
"####;
        let toks = lex(src);
        for banned in ["unwrap", "panic", "SeqCst", "atomic", "debug_assert"] {
            assert!(
                !toks.iter().any(|t| t.is_ident(banned)),
                "`{banned}` leaked out of a raw string"
            );
        }
    }

    #[test]
    fn nested_comment_decoys_and_line_numbers() {
        // `/*` inside the comment deepens the nesting: the first `*/` only
        // closes the inner level, so `.unwrap()` is still commented out —
        // and the line counter survives the whole block.
        let src =
            "/* outer /* inner */ still comment .unwrap() */\nlet x = 1;\nlet c = 'y';\nlet d = 2;";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        let x = toks.iter().find(|t| t.is_ident("x")).expect("x survives");
        assert_eq!(x.line, 2);
        // Char literals keep the line of their opening quote.
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::Str && t.text == "y")
            .expect("char literal lexes");
        assert_eq!(c.line, 3);
        let d = toks.iter().find(|t| t.is_ident("d")).expect("d survives");
        assert_eq!(d.line, 4);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("let r = 0i64..1_000; let f = 1.5e3; let h = 0xFF;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0i64", "1_000", "1.5e3", "0xFF"]);
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = r#"
pub fn lib_code() { value.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { other.unwrap().unwrap(); }
}
pub fn more_lib() {}
#[test]
fn stray_test() { x.unwrap(); }
pub fn after() {}
"#;
        let stripped = strip_test_code(&lex(src));
        let unwraps = stripped.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1, "only the library unwrap survives");
        assert!(stripped.iter().any(|t| t.is_ident("more_lib")));
        assert!(stripped.iter().any(|t| t.is_ident("after")));
        assert!(!stripped.iter().any(|t| t.is_ident("stray_test")));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = r#"
#[cfg(feature = "x")]
pub fn kept() { a.unwrap(); }
"#;
        let stripped = strip_test_code(&lex(src));
        assert!(stripped.iter().any(|t| t.is_ident("kept")));
    }
}
