//! Workspace automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! Tasks:
//!
//! - `lint`: a repo-specific static-analysis pass over the library crates
//!   enforcing the invariants CONTRIBUTING.md documents — exact integer
//!   arithmetic in the geometry/diagram layers, panic hygiene, `#[must_use]`
//!   on diagram and result-set producers, and the concurrency discipline
//!   (sync-facade imports, justified `Relaxed`, no `SeqCst`, pure
//!   `debug_assert!` bodies). Violations are either fixed or allowlisted in
//!   `crates/xtask/lint.toml` with a written justification; stale allowlist
//!   entries fail the run.
//! - `sched-mutate`: a mutation test for the interleaving checker. Weakens
//!   the marked `Release` publication store in `crates/core/src/epoch.rs`
//!   to `Relaxed` in place, runs the `skyline_sched` epoch suite, and
//!   asserts the checker *fails* with a `sched-finding` — proving the model
//!   checker actually detects the bug class it exists for. The original
//!   file is restored whatever happens (a `.sched-mutate.bak` copy guards
//!   against crashes).

mod config;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("sched-mutate") => sched_mutate(),
        Some(other) => {
            eprintln!("unknown task `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task>\n");
    eprintln!("tasks:");
    eprintln!("  lint          run the repo-specific static-analysis pass");
    eprintln!("                (rules and allowlist: crates/xtask/lint.toml)");
    eprintln!("  sched-mutate  weaken the epoch Release store to Relaxed and");
    eprintln!("                assert the skyline_sched checker catches it");
}

/// `CARGO_MANIFEST_DIR` is `crates/xtask`; the workspace root is two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allowlist_path = root.join("crates/xtask/lint.toml");
    let allowlist_src = match std::fs::read_to_string(&allowlist_path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", allowlist_path.display());
            return ExitCode::FAILURE;
        }
    };
    let allowlist = match config::parse_allowlist(&allowlist_src) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("error: crates/xtask/lint.toml:{err}");
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut reported = 0usize;
    let mut allow_used = vec![false; allowlist.len()];
    let mut checked = 0usize;

    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .expect("files were collected by walking down from the workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        // xtask lints the product, not itself.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("error: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        // Test-module stripping happens inside `run_all`, which knows
        // which scopes lint their test code too. The source text rides
        // along for the comment-reading rules (`relaxed-ok:` markers).
        let findings = rules::run_all(&rel, &src, &lexer::lex(&src));
        if !findings.is_empty() {
            checked += 1;
        }
        let lines: Vec<&str> = src.lines().collect();
        for f in findings {
            let line_text = usize::try_from(f.line)
                .ok()
                .and_then(|n| n.checked_sub(1))
                .and_then(|n| lines.get(n).copied())
                .unwrap_or("");
            let allowed = allowlist.iter().enumerate().find(|(_, a)| {
                a.rule == f.rule && a.path == rel && line_text.contains(&a.line_contains)
            });
            if let Some((idx, _)) = allowed {
                allow_used[idx] = true;
                continue;
            }
            reported += 1;
            println!("{rel}:{}: [{}] {}", f.line, f.rule, f.message);
            println!("    hint: {}", f.hint);
        }
    }

    let mut stale = 0usize;
    for (entry, used) in allowlist.iter().zip(&allow_used) {
        if !used {
            stale += 1;
            println!(
                "crates/xtask/lint.toml:{}: stale allowlist entry ({} in {} matching {:?}) — \
                 the violation it excused is gone; delete the entry",
                entry.toml_line, entry.rule, entry.path, entry.line_contains
            );
        }
    }

    if reported > 0 || stale > 0 {
        eprintln!(
            "\nlint: {reported} violation(s), {stale} stale allowlist entr(y/ies) \
             across {} file(s)",
            checked
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint: clean ({} files scanned, {} allowlisted)",
            files.len(),
            allowlist.len()
        );
        ExitCode::SUCCESS
    }
}

/// Restores a mutated source file when dropped, so `sched-mutate` cannot
/// leave the tree weakened even if the test run panics.
struct RestoreFile {
    path: PathBuf,
    backup: PathBuf,
    original: String,
}

impl Drop for RestoreFile {
    fn drop(&mut self) {
        if let Err(err) = std::fs::write(&self.path, &self.original) {
            eprintln!(
                "error: FAILED to restore {}: {err}\n       recover it from {}",
                self.path.display(),
                self.backup.display()
            );
            return;
        }
        let _ = std::fs::remove_file(&self.backup);
    }
}

/// Mutation test for the interleaving checker: flip the marked `Release`
/// publication store in `epoch.rs` to `Relaxed`, run the model-checked
/// epoch suite, and demand it fails with a `sched-finding`. A green suite
/// under the weakened ordering would mean the checker cannot see the very
/// bug class it was built for.
fn sched_mutate() -> ExitCode {
    let root = workspace_root();
    let path = root.join("crates/core/src/epoch.rs");
    let original = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };

    // The marker comment sits on the line before the store under test.
    let marker = "sched-mutate: release-store";
    let mut mutated_lines: Vec<String> = Vec::new();
    let mut mutate_next = false;
    let mut flipped = 0usize;
    for line in original.lines() {
        if mutate_next && line.contains("Ordering::Release") {
            mutated_lines.push(line.replace("Ordering::Release", "Ordering::Relaxed"));
            flipped += 1;
        } else {
            mutated_lines.push(line.to_owned());
        }
        mutate_next = line.contains(marker);
    }
    if flipped != 1 {
        eprintln!(
            "error: expected exactly one `Ordering::Release` directly after the \
             `{marker}` marker in {}; found {flipped}",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let mutated = mutated_lines.join("\n") + "\n";

    let backup = root.join("crates/core/src/epoch.rs.sched-mutate.bak");
    if let Err(err) = std::fs::write(&backup, &original) {
        eprintln!("error: cannot write backup {}: {err}", backup.display());
        return ExitCode::FAILURE;
    }
    let _restore = RestoreFile {
        path: path.clone(),
        backup,
        original,
    };
    if let Err(err) = std::fs::write(&path, &mutated) {
        eprintln!("error: cannot write mutation to {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    println!("sched-mutate: weakened the epoch publication store to Relaxed");

    // A separate target dir keeps the poisoned build artifacts away from
    // both the normal cache and the honest skyline_sched cache.
    let output = std::process::Command::new("cargo")
        .current_dir(&root)
        .env("RUSTFLAGS", "--cfg skyline_sched")
        .args([
            "test",
            "-p",
            "skyline-core",
            "--test",
            "sched_epoch",
            "--target-dir",
            "target/sched-mutate",
        ])
        .output();
    let output = match output {
        Ok(out) => out,
        Err(err) => {
            eprintln!("error: failed to run cargo: {err}");
            return ExitCode::FAILURE;
        }
    };
    let combined = format!(
        "{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    if output.status.success() {
        eprintln!(
            "sched-mutate: FAIL — the model-checked epoch suite PASSED against the \
             weakened store; the checker missed the seeded ordering bug"
        );
        return ExitCode::FAILURE;
    }
    if !combined.contains("sched-finding") {
        eprintln!(
            "sched-mutate: FAIL — the suite failed, but not with a `sched-finding` \
             (wrong failure mode):\n{combined}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "sched-mutate: PASS — the checker caught the weakened publication store \
         with a sched-finding"
    );
    ExitCode::SUCCESS
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
