//! Workspace automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! The only task today is `lint`: a repo-specific static-analysis pass over
//! the library crates enforcing the invariants CONTRIBUTING.md documents —
//! exact integer arithmetic in the geometry/diagram layers, panic hygiene
//! in library code, and `#[must_use]` on diagram and result-set producers.
//! Violations are either fixed or allowlisted in `crates/xtask/lint.toml`
//! with a written justification; stale allowlist entries fail the run.

mod config;
mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task>\n");
    eprintln!("tasks:");
    eprintln!("  lint    run the repo-specific static-analysis pass");
    eprintln!("          (rules and allowlist: crates/xtask/lint.toml)");
}

/// `CARGO_MANIFEST_DIR` is `crates/xtask`; the workspace root is two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allowlist_path = root.join("crates/xtask/lint.toml");
    let allowlist_src = match std::fs::read_to_string(&allowlist_path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", allowlist_path.display());
            return ExitCode::FAILURE;
        }
    };
    let allowlist = match config::parse_allowlist(&allowlist_src) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("error: crates/xtask/lint.toml:{err}");
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut reported = 0usize;
    let mut allow_used = vec![false; allowlist.len()];
    let mut checked = 0usize;

    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .expect("files were collected by walking down from the workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        // xtask lints the product, not itself.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("error: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        // Test-module stripping happens inside `run_all`, which knows
        // which scopes lint their test code too.
        let findings = rules::run_all(&rel, &lexer::lex(&src));
        if !findings.is_empty() {
            checked += 1;
        }
        let lines: Vec<&str> = src.lines().collect();
        for f in findings {
            let line_text = usize::try_from(f.line)
                .ok()
                .and_then(|n| n.checked_sub(1))
                .and_then(|n| lines.get(n).copied())
                .unwrap_or("");
            let allowed = allowlist.iter().enumerate().find(|(_, a)| {
                a.rule == f.rule && a.path == rel && line_text.contains(&a.line_contains)
            });
            if let Some((idx, _)) = allowed {
                allow_used[idx] = true;
                continue;
            }
            reported += 1;
            println!("{rel}:{}: [{}] {}", f.line, f.rule, f.message);
            println!("    hint: {}", f.hint);
        }
    }

    let mut stale = 0usize;
    for (entry, used) in allowlist.iter().zip(&allow_used) {
        if !used {
            stale += 1;
            println!(
                "crates/xtask/lint.toml:{}: stale allowlist entry ({} in {} matching {:?}) — \
                 the violation it excused is gone; delete the entry",
                entry.toml_line, entry.rule, entry.path, entry.line_contains
            );
        }
    }

    if reported > 0 || stale > 0 {
        eprintln!(
            "\nlint: {reported} violation(s), {stale} stale allowlist entr(y/ies) \
             across {} file(s)",
            checked
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint: clean ({} files scanned, {} allowlisted)",
            files.len(),
            allowlist.len()
        );
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
