//! The lint rules.
//!
//! Each rule walks the test-stripped token stream of one file (see
//! [`crate::lexer`]) and emits [`Finding`]s. Scoping is by workspace-relative
//! path prefix: exact-integer rules apply to skyline-core's geometry and
//! diagram layers, panic-hygiene rules to all library crates. The CLI,
//! benches, shims (vendored stand-ins), tests, and examples are exempt.

use crate::lexer::{Tok, TokKind};

/// Paths where coordinates and cell indices live; arithmetic here must be
/// exact and conversions explicit.
const EXACT_SCOPE: &[&str] = &["crates/core/src/geometry", "crates/core/src/diagram"];

/// Library crates where panics are reserved for stated invariants.
const LIB_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/apps/src",
    "crates/data/src",
    "crates/serve/src",
    "crates/viz/src",
];

/// Files that make up the lock-free snapshot read path. Readers must never
/// block: epoch publication and cache fills use `OnceLock`/atomics only, so
/// any `Mutex`/`RwLock` here breaks the serving layer's progress guarantee.
/// The writer side (`server.rs`) is deliberately out of scope — its single
/// `Mutex` serializes updates, never reads.
const READ_PATH_SCOPE: &[&str] = &[
    "crates/core/src/epoch.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/snapshot.rs",
];

/// Arena-backed storage modules: cells, results, and polyominoes live in
/// flat arenas (CSR `cells_flat`/`ends` slices, stride-`words` u64 bitset
/// blocks). A nested `Vec<Vec<…>>` or a `Box`/`Rc` here reintroduces the
/// per-cell heap allocation the arena layout exists to eliminate, and the
/// regression is invisible in review (the code still works — it's just
/// O(cells) allocations slower). Deliberately allowlist-free: the arenas
/// *are* the escape hatch. `diagram/boundary.rs` is out of scope by
/// construction — its loop walks are per-polyomino output geometry with
/// genuinely jagged shape, not cell storage.
const ARENA_SCOPE: &[&str] = &[
    "crates/core/src/container.rs",
    "crates/core/src/result_set.rs",
    "crates/core/src/diagram/cell_diagram.rs",
    "crates/core/src/diagram/diff.rs",
    "crates/core/src/diagram/merge.rs",
    "crates/core/src/diagram/mod.rs",
    "crates/core/src/diagram/polyomino.rs",
];

/// Numeric primitive names, for spotting `as <numeric>` casts.
const NUMERIC_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize", "f32",
    "f64",
];

/// Diagram-like types that must be declared `#[must_use]`: dropping one on
/// the floor is always a bug (the build was the whole point).
const MUST_USE_TYPES: &[&str] = &[
    "CellDiagram",
    "SubcellDiagram",
    "SubcellDiagramD",
    "MergedDiagram",
    "SweptDiagram",
    "HighDDiagram",
];

/// Minimum length for an `.expect()` message to count as stating an
/// invariant rather than restating the call.
const MIN_EXPECT_MESSAGE: usize = 15;

/// The only files allowed to touch `std::thread` directly: the scoped worker
/// pool every parallel engine funnels through, and the deterministic
/// interleaving checker (whose *job* is owning model threads). Everything
/// else must go via `skyline_core::parallel` so the determinism contract
/// (sequential stitch, `SKYLINE_THREADS`, worker cap) cannot be bypassed.
const RAW_SPAWN_EXEMPT: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/sync/sched.rs",
];

/// The synchronization facade: the one directory where raw
/// `std::sync::atomic` / `std::sync::OnceLock` (and the checker's internal
/// `SeqCst` bookkeeping) are legal, because this is where the facade and the
/// model checker are *implemented*. Everything else imports through
/// `crate::sync` / `skyline_core::sync` so `--cfg skyline_sched` can swap
/// the primitives for their model-checked twins.
const SYNC_FACADE: &[&str] = &["crates/core/src/sync"];

/// The counting-allocator module: the one library file allowed to name
/// `std::alloc` and `GlobalAlloc` (it *is* the allocator hook), and —
/// like [`SYNC_FACADE`] — allowed raw `std::sync::atomic`: the facade's
/// `--cfg skyline_sched` twins yield to an interleaving checker that
/// itself allocates, which would recurse into the hook. `atomic-ordering`
/// still applies there (every `Relaxed` carries its justification).
const MEM_ALLOCATOR: &[&str] = &["crates/core/src/telemetry/mem.rs"];

/// Method names whose call inside a `debug_assert!` body mutates the
/// receiver: the assertion (and the side effect) vanish in release builds,
/// so debug and release binaries diverge. `next` is deliberately absent —
/// iterator-driving asserts are caught by the `fetch_*` prefix and the
/// mutation list, not by banning every cursor read.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "take",
    "swap",
    "replace",
    "store",
    "set",
    "compare_exchange",
    "compare_exchange_weak",
    "get_or_init",
    "get_or_insert",
    "drain",
    "truncate",
    "append",
    "extend",
    "retain",
];

/// The only library file allowed to read the monotonic clock directly: the
/// telemetry layer, which owns the process epoch every probe measures
/// against. Ad-hoc `Instant` timing elsewhere in library code bypasses the
/// span/metrics registry — and its feature gate — so the measurement never
/// reaches traces and cannot be compiled out. Benches and binaries are
/// outside [`LIB_SCOPE`] and keep their wall clocks.
const TIMING_EXEMPT: &[&str] = &["crates/core/src/telemetry.rs"];

/// Integration-test suites held to the same clock discipline as library
/// code. The serve differentials measure *scheduling* (open-loop arrival
/// times, stall exposure); an ad-hoc `Instant` there would measure against
/// a different epoch than the driver under test, so even test-only timing
/// must go through `skyline_core::telemetry` (`now_ns`/`ms_since`/
/// `spin_until`). Unlike [`LIB_SCOPE`], these files are linted with their
/// `#[test]` functions *included* — the test bodies are the product here.
const TIMING_TEST_SCOPE: &[&str] = &["crates/serve/tests"];

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Rule id, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|prefix| path.starts_with(prefix))
}

/// Runs every rule applicable to `path` over its *raw* token stream.
/// Test modules are stripped here before the library rules run; the
/// timing rule additionally runs over the unstripped stream for
/// [`TIMING_TEST_SCOPE`] files, whose test bodies are in scope. `src` is
/// the file's source text: the `atomic-ordering` rule reads comment lines
/// (which the lexer drops) to find `relaxed-ok:` justifications.
pub fn run_all(path: &str, src: &str, raw: &[Tok]) -> Vec<Finding> {
    let stripped = crate::lexer::strip_test_code(raw);
    let toks = &stripped[..];
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    if in_scope(path, EXACT_SCOPE) {
        no_as_cast(toks, &mut findings);
        no_float(toks, &mut findings);
    }
    if in_scope(path, ARENA_SCOPE) {
        no_per_cell_alloc(toks, &mut findings);
    }
    if in_scope(path, LIB_SCOPE) {
        no_unwrap(toks, &mut findings);
        no_panic(toks, &mut findings);
        expect_message(toks, &mut findings);
        must_use(toks, &mut findings);
        no_side_effect_debug_assert(toks, &mut findings);
        if !TIMING_EXEMPT.contains(&path) {
            no_ad_hoc_timing(toks, &mut findings);
        }
        if !in_scope(path, SYNC_FACADE) {
            if !MEM_ALLOCATOR.contains(&path) {
                no_raw_atomic(toks, &mut findings);
            }
            atomic_ordering(toks, &lines, &mut findings);
        }
        if !MEM_ALLOCATOR.contains(&path) {
            no_raw_alloc_count(toks, &mut findings);
        }
    }
    if in_scope(path, TIMING_TEST_SCOPE) {
        no_ad_hoc_timing(raw, &mut findings);
    }
    if !RAW_SPAWN_EXEMPT.contains(&path) {
        no_raw_spawn(toks, &mut findings);
    }
    if in_scope(path, READ_PATH_SCOPE) {
        no_lock_read_path(toks, &mut findings);
    }
    findings
}

/// `no-raw-atomic`: library code must reach atomics and `OnceLock` through
/// the `crate::sync` / `skyline_core::sync` facade, never via raw
/// `std::sync::atomic::*` or `std::sync::OnceLock` paths. The facade is what
/// lets `--cfg skyline_sched` swap every primitive for its model-checked
/// twin; a raw import is invisible to the interleaving checker. There is no
/// allowlist for this rule by design — the only legal home for raw paths is
/// [`SYNC_FACADE`] itself. `Arc`/`Mutex` stay unrestricted here: they carry
/// no ordering semantics the checker misses (the read-path lock ban is
/// `no-lock-read-path`'s job).
fn no_raw_atomic(toks: &[Tok], findings: &mut Vec<Finding>) {
    let mut report = |line: u32, what: &str| {
        findings.push(Finding {
            rule: "no-raw-atomic",
            line,
            message: format!("raw `std::sync::{what}` outside the sync facade"),
            hint: "import through crate::sync / skyline_core::sync so the skyline_sched \
                   model checker can interpose on the primitive",
        });
    };
    for (i, win) in toks.windows(7).enumerate() {
        let [s, a1, a2, y, b1, b2, x] = win else {
            continue;
        };
        if !(s.is_ident("std")
            && a1.is_punct(':')
            && a2.is_punct(':')
            && y.is_ident("sync")
            && b1.is_punct(':')
            && b2.is_punct(':'))
        {
            continue;
        }
        if x.is_ident("atomic") || x.is_ident("OnceLock") {
            report(x.line, &x.text);
        } else if x.is_punct('{') {
            // `use std::sync::{…}` group: flag each banned leaf inside.
            let mut depth = 0i32;
            for t in &toks[i + 6..] {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("atomic") || t.is_ident("OnceLock") {
                    report(t.line, &t.text);
                }
            }
        }
    }
}

/// `no-raw-alloc-count`: library code must not reach for `std::alloc` or
/// implement/name `GlobalAlloc` outside [`MEM_ALLOCATOR`]. A second
/// allocator hook would double-count (or silently bypass) the memory
/// observatory's live/peak/phase accounting, and ad-hoc
/// `std::alloc::alloc` calls produce bytes the `heap_bytes()` arithmetic
/// can never see. Deliberately allowlist-free: the counting allocator is
/// the escape hatch.
fn no_raw_alloc_count(toks: &[Tok], findings: &mut Vec<Finding>) {
    for win in toks.windows(4) {
        let [s, c1, c2, a] = win else { continue };
        if s.is_ident("std") && c1.is_punct(':') && c2.is_punct(':') && a.is_ident("alloc") {
            findings.push(Finding {
                rule: "no-raw-alloc-count",
                line: a.line,
                message: "raw `std::alloc` outside the counting allocator".to_owned(),
                hint: "allocation instrumentation lives in crates/core/src/telemetry/mem.rs;                        use containers (or the mem accessors) instead of raw alloc calls",
            });
        }
    }
    for tok in toks {
        if tok.is_ident("GlobalAlloc") {
            findings.push(Finding {
                rule: "no-raw-alloc-count",
                line: tok.line,
                message: "`GlobalAlloc` named outside the counting allocator".to_owned(),
                hint: "the workspace installs exactly one allocator hook                        (crates/core/src/telemetry/mem.rs); a second one would bypass the                        memory observatory's accounting",
            });
        }
    }
}

/// `atomic-ordering`: every `Ordering::Relaxed` in library code must carry a
/// `// relaxed-ok: <why>` justification on the same line or in the comment
/// block directly above it — relaxed atomics are correct only for values
/// that never order other memory (counters, tuning knobs), and the reviewer
/// should not have to reconstruct that argument. `Ordering::SeqCst` is
/// banned outright: it papers over a missing happens-before design instead
/// of stating one (the checker's internal bookkeeping in [`SYNC_FACADE`] is
/// the sole exemption).
fn atomic_ordering(toks: &[Tok], lines: &[&str], findings: &mut Vec<Finding>) {
    for tok in toks {
        if tok.is_ident("SeqCst") {
            findings.push(Finding {
                rule: "atomic-ordering",
                line: tok.line,
                message: "`Ordering::SeqCst` in library code".to_owned(),
                hint: "state the intended happens-before edge with Release/Acquire (or \
                       justify Relaxed); SeqCst hides the design instead of fixing it",
            });
        }
    }
    for win in toks.windows(4) {
        let [a, c1, c2, b] = win else { continue };
        if a.is_ident("Ordering")
            && c1.is_punct(':')
            && c2.is_punct(':')
            && b.is_ident("Relaxed")
            && !relaxed_justified(lines, b.line)
        {
            findings.push(Finding {
                rule: "atomic-ordering",
                line: b.line,
                message: "`Ordering::Relaxed` without a `relaxed-ok:` justification".to_owned(),
                hint: "add `// relaxed-ok: <why no other memory depends on this value>` on \
                       the line or directly above it",
            });
        }
    }
}

/// Is a `Relaxed` at 1-based `line` covered by a `relaxed-ok:` marker — on
/// the same line, or in the contiguous run of `//` comment lines directly
/// above it?
fn relaxed_justified(lines: &[&str], line: u32) -> bool {
    let Some(idx) = usize::try_from(line).ok().and_then(|n| n.checked_sub(1)) else {
        return false;
    };
    if lines.get(idx).is_some_and(|l| l.contains("relaxed-ok:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if trimmed.contains("relaxed-ok:") {
            return true;
        }
    }
    false
}

/// `no-side-effect-debug-assert`: `debug_assert!` bodies vanish in release
/// builds, so a mutation inside one (an atomic RMW, a `pop`, a `set`) makes
/// debug and release binaries compute different states. Flags any call of a
/// `fetch_*` method or a [`MUTATING_METHODS`] name inside the macro's
/// argument list. Deliberately allowlist-free: there is no legitimate
/// mutation whose disappearance is harmless.
fn no_side_effect_debug_assert(toks: &[Tok], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        let is_da = toks[i].kind == TokKind::Ident && toks[i].text.starts_with("debug_assert");
        if !(is_da
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
        {
            i += 1;
            continue;
        }
        // Walk the macro's parenthesized body.
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct('.')
                && toks.get(j + 2).is_some_and(|p| p.is_punct('('))
                && toks.get(j + 1).is_some_and(|m| {
                    m.kind == TokKind::Ident
                        && (m.text.starts_with("fetch_")
                            || MUTATING_METHODS.contains(&m.text.as_str()))
                })
            {
                let m = &toks[j + 1];
                findings.push(Finding {
                    rule: "no-side-effect-debug-assert",
                    line: m.line,
                    message: format!("mutating call `.{}(…)` inside a debug_assert body", m.text),
                    hint: "hoist the side effect out of the assertion; debug_assert bodies \
                           are compiled away in release builds",
                });
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// `no-lock-read-path`: blocking synchronization primitives are banned from
/// the snapshot read path ([`READ_PATH_SCOPE`]). A reader that can block on
/// a `Mutex`/`RwLock` loses the wait-free progress guarantee the serving
/// layer advertises; cache fills and epoch hops must go through `OnceLock`
/// and atomics instead. Test modules are stripped before linting, so
/// lock-based *assertions* in unit tests stay legal.
fn no_lock_read_path(toks: &[Tok], findings: &mut Vec<Finding>) {
    for tok in toks {
        if tok.kind == TokKind::Ident && matches!(tok.text.as_str(), "Mutex" | "RwLock") {
            findings.push(Finding {
                rule: "no-lock-read-path",
                line: tok.line,
                message: format!(
                    "blocking primitive `{}` on the snapshot read path",
                    tok.text
                ),
                hint: "the serve read path is lock-free by contract; use OnceLock/atomics \
                       here and keep mutexes on the writer side (server.rs)",
            });
        }
    }
}

/// `no-raw-spawn`: threading outside `skyline_core::parallel` bypasses the
/// scoped pool's determinism contract (`SKYLINE_THREADS`, index-ordered
/// stitch, hardware-width worker cap). Both the fully qualified
/// `std::thread` path and the imported `thread::spawn`/`scope`/`Builder`
/// forms are flagged, everywhere in the workspace except the pool itself.
fn no_raw_spawn(toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, win) in toks.windows(4).enumerate() {
        let [a, c1, c2, b] = win else { continue };
        if !(c1.is_punct(':') && c2.is_punct(':') && b.kind == TokKind::Ident) {
            continue;
        }
        let hit = if a.is_ident("std") && b.text == "thread" {
            Some("std::thread")
        } else if a.is_ident("thread")
            && matches!(b.text.as_str(), "spawn" | "scope" | "Builder")
            // `std::thread::spawn` already reported via the `std::thread`
            // prefix two tokens earlier; don't double-count it.
            && !(i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("std"))
        {
            Some("thread::")
        } else {
            None
        };
        if let Some(what) = hit {
            findings.push(Finding {
                rule: "no-raw-spawn",
                line: b.line,
                message: format!("direct `{}{}` use outside the parallel layer", what, {
                    if what == "thread::" {
                        b.text.as_str()
                    } else {
                        ""
                    }
                }),
                hint: "route all threading through skyline_core::parallel \
                       (map/map_indexed) so SKYLINE_THREADS and the determinism \
                       contract apply",
            });
        }
    }
}

/// `no-ad-hoc-timing`: raw [`std::time::Instant`] readings in library code
/// ([`LIB_SCOPE`] minus [`TIMING_EXEMPT`]) bypass the telemetry layer: the
/// measurement never shows up in a recorded trace and keeps running when
/// the `telemetry` feature is off. Time through `skyline_core::telemetry`
/// (`span!`, `now_ns`/`ms_since`) instead.
fn no_ad_hoc_timing(toks: &[Tok], findings: &mut Vec<Finding>) {
    for tok in toks {
        if tok.kind == TokKind::Ident && tok.text == "Instant" {
            findings.push(Finding {
                rule: "no-ad-hoc-timing",
                line: tok.line,
                message: "raw `Instant` timing outside the telemetry layer".to_owned(),
                hint: "measure through skyline_core::telemetry (span!, now_ns/ms_since) so \
                       timings land in traces and compile out with the feature",
            });
        }
    }
}

/// `no-per-cell-alloc`: the arena-backed storage modules ([`ARENA_SCOPE`])
/// keep cells, result sets, and polyominoes in flat arenas — CSR slices
/// indexed by prefix-summed `ends`, and fixed-stride u64 bitset blocks. A
/// nested `Vec<Vec<…>>` type means one heap allocation per cell/polyomino
/// again; `Box`/`Rc` mean pointer-chased storage the word-parallel kernels
/// cannot slice. Both are flagged wherever they appear in scope — there is
/// no allowlist, because the arena types themselves are the sanctioned way
/// to express every shape these modules need.
fn no_per_cell_alloc(toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        if tok.text == "Box" || tok.text == "Rc" {
            findings.push(Finding {
                rule: "no-per-cell-alloc",
                line: tok.line,
                message: format!("pointer-indirect `{}` in arena-backed storage", tok.text),
                hint: "store through the flat arenas (CSR cells_flat/ends, bitset blocks); \
                       pointer indirection defeats the contiguous layout",
            });
        }
        if tok.text == "Vec"
            && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("Vec"))
        {
            findings.push(Finding {
                rule: "no-per-cell-alloc",
                line: tok.line,
                message: "nested `Vec<Vec<…>>` in arena-backed storage".to_owned(),
                hint: "one allocation per element is the layout this module exists to \
                       avoid; flatten into a CSR arena (data + prefix-summed ends)",
            });
        }
    }
}

/// `no-as-cast`: numeric `as` casts silently truncate and sign-extend; the
/// geometry/diagram layers must use `From`/`TryFrom` conversions instead.
fn no_as_cast(toks: &[Tok], findings: &mut Vec<Finding>) {
    for pair in toks.windows(2) {
        let [a, b] = pair else { continue };
        if a.is_ident("as") && b.kind == TokKind::Ident && NUMERIC_TYPES.contains(&b.text.as_str())
        {
            findings.push(Finding {
                rule: "no-as-cast",
                line: a.line,
                message: format!("numeric cast `as {}`", b.text),
                hint: "use From/TryFrom (see geometry::conv) so truncation is impossible or \
                       fails loudly",
            });
        }
    }
}

/// `no-float`: coordinates and cell indices are exact integers (the paper's
/// grid is integral); floats in geometry/diagram code risk silent rounding.
fn no_float(toks: &[Tok], findings: &mut Vec<Finding>) {
    for pair in toks.windows(2) {
        let [a, b] = pair else { continue };
        // `as f64` is already reported by no-as-cast; skip the double report.
        if a.is_ident("as") {
            continue;
        }
        if b.kind == TokKind::Ident && (b.text == "f32" || b.text == "f64") {
            findings.push(Finding {
                rule: "no-float",
                line: b.line,
                message: format!("floating-point type `{}` in exact-arithmetic code", b.text),
                hint: "keep geometry/diagram code integral; do float summarisation in \
                       skyline_core::analysis",
            });
        }
        // Float literals carry the dot, an exponent, or an `f32`/`f64`
        // suffix inside one numeric token: `0.5`, `1e3`, `2f64`. Integer
        // range bounds (`0..5`) never lex a dot into the number, and nested
        // tuple access (`pair.0.1`) is excluded by the leading-dot guard.
        if b.kind == TokKind::Num && !a.is_punct('.') && is_float_literal(&b.text) {
            findings.push(Finding {
                rule: "no-float",
                line: b.line,
                message: format!(
                    "floating-point literal `{}` in exact-arithmetic code",
                    b.text
                ),
                hint: "keep geometry/diagram code integral; do float summarisation in \
                       skyline_core::analysis",
            });
        }
    }
}

/// Does a single numeric token spell a float? Hex literals are excluded up
/// front (`0x1f32` is an integer); after that a dot, an `f32`/`f64` suffix,
/// or a digit-bearing exponent (`1e3`) marks a float.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    text.bytes()
        .zip(text.bytes().skip(1))
        .any(|(e, d)| (e == b'e' || e == b'E') && d.is_ascii_digit())
}

/// `no-unwrap`: `.unwrap()` panics without saying why. Library code returns
/// `Result` or uses `.expect()` with a message stating the invariant.
fn no_unwrap(toks: &[Tok], findings: &mut Vec<Finding>) {
    for win in toks.windows(3) {
        let [dot, name, paren] = win else { continue };
        if dot.is_punct('.') && name.is_ident("unwrap") && paren.is_punct('(') {
            findings.push(Finding {
                rule: "no-unwrap",
                line: name.line,
                message: ".unwrap() in library code".to_owned(),
                hint: "return Result, or use .expect(\"<why this cannot fail>\") if it is a \
                       checked invariant",
            });
        }
    }
}

/// `no-panic`: `panic!`/`todo!`/`unimplemented!` in library code; prefer
/// `Error` variants (or `assert!` family for invariants, which this rule
/// deliberately permits).
fn no_panic(toks: &[Tok], findings: &mut Vec<Finding>) {
    for win in toks.windows(2) {
        let [name, bang] = win else { continue };
        if !bang.is_punct('!') {
            continue;
        }
        if name.is_ident("panic") || name.is_ident("todo") || name.is_ident("unimplemented") {
            findings.push(Finding {
                rule: "no-panic",
                line: name.line,
                message: format!("`{}!` in library code", name.text),
                hint: "return an Error variant; if the state is impossible, assert the \
                       invariant instead",
            });
        }
    }
}

/// `expect-message`: `.expect()` must carry a string literal long enough to
/// state the invariant that makes the panic unreachable.
fn expect_message(toks: &[Tok], findings: &mut Vec<Finding>) {
    for (i, win) in toks.windows(3).enumerate() {
        let [dot, name, paren] = win else { continue };
        if !(dot.is_punct('.') && name.is_ident("expect") && paren.is_punct('(')) {
            continue;
        }
        let arg = toks.get(i + 3);
        let literal = arg.filter(|t| t.kind == TokKind::Str);
        match literal {
            Some(lit) if lit.text.len() >= MIN_EXPECT_MESSAGE => {}
            Some(lit) => findings.push(Finding {
                rule: "expect-message",
                line: name.line,
                message: format!(
                    "expect message \"{}\" is too short to state an invariant",
                    lit.text
                ),
                hint: "say why the value must be present, not just that it is expected",
            }),
            None => findings.push(Finding {
                rule: "expect-message",
                line: name.line,
                message: ".expect() without a string-literal message".to_owned(),
                hint: "pass a literal stating the invariant; computed messages hide the \
                       reason from grep",
            }),
        }
    }
}

/// `must-use`: diagram types must be declared `#[must_use]`, and public
/// functions returning skyline result sets (`Vec<PointId>`) must be
/// annotated — discarding either silently drops the computed answer.
fn must_use(toks: &[Tok], findings: &mut Vec<Finding>) {
    // Part 1: type declarations.
    for (i, tok) in toks.iter().enumerate() {
        if !(tok.is_ident("struct") || tok.is_ident("enum")) {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind == TokKind::Ident
            && MUST_USE_TYPES.contains(&name.text.as_str())
            && !has_attr_ident_before(toks, i, "must_use")
        {
            findings.push(Finding {
                rule: "must-use",
                line: name.line,
                message: format!("diagram type `{}` is not #[must_use]", name.text),
                hint: "add #[must_use] to the type so dropped build results are a warning",
            });
        }
    }
    // Part 2: public result-set constructors.
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_ident("pub") {
            continue;
        }
        // `pub(crate)` etc. is not public API.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Allow `pub const fn` / `pub unsafe fn`.
        let fn_idx =
            (i + 1..=(i + 3).min(toks.len().saturating_sub(1))).find(|&j| toks[j].is_ident("fn"));
        let Some(fn_idx) = fn_idx else { continue };
        let Some(fn_name) = toks.get(fn_idx + 1) else {
            continue;
        };
        let ret = return_type_tokens(toks, fn_idx);
        let returns_result_set =
            ret.iter().any(|t| t.is_ident("Vec")) && ret.iter().any(|t| t.is_ident("PointId"));
        // Functions returning a MUST_USE_TYPES value are covered by the
        // type-level attribute; only bare result sets need the fn attr.
        if returns_result_set && !has_attr_ident_before(toks, i, "must_use") {
            findings.push(Finding {
                rule: "must-use",
                line: fn_name.line,
                message: format!(
                    "public fn `{}` returns a skyline result set without #[must_use]",
                    fn_name.text
                ),
                hint: "annotate the function so an ignored query answer is a warning",
            });
        }
    }
}

/// Tokens of the return type of the `fn` at `fn_idx`: everything between
/// `->` and the body/`where`/`;`, or empty if the fn returns `()`.
fn return_type_tokens(toks: &[Tok], fn_idx: usize) -> &[Tok] {
    // Find the parameter list's closing paren.
    let mut i = fn_idx;
    while i < toks.len() && !toks[i].is_punct('(') {
        // A `{` or `;` before `(` means we ran off the signature.
        if toks[i].is_punct('{') || toks[i].is_punct(';') {
            return &[];
        }
        i += 1;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        i += 1;
    }
    let Some([a, b]) = toks.get(i + 1..i + 3) else {
        return &[];
    };
    if !(a.is_punct('-') && b.is_punct('>')) {
        return &[];
    }
    let start = i + 3;
    let mut end = start;
    while end < toks.len() {
        let t = &toks[end];
        if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
            break;
        }
        end += 1;
    }
    &toks[start..end]
}

/// Does any attribute in the run of `#[…]` attributes directly preceding
/// token `item` contain `ident`? Scans backwards over whole attributes only,
/// so `must_use` inside an unrelated earlier item cannot leak forward.
fn has_attr_ident_before(toks: &[Tok], item: usize, ident: &str) -> bool {
    // Step back over visibility/qualifier keywords to the attribute run.
    let mut end = item;
    while end > 0 && toks[end - 1].kind == TokKind::Ident {
        let t = &toks[end - 1].text;
        if matches!(t.as_str(), "pub" | "const" | "unsafe" | "async" | "extern") {
            end -= 1;
        } else {
            break;
        }
    }
    while end > 0 && toks[end - 1].is_punct(']') {
        // Find the `#[` opening this attribute by bracket matching backwards.
        let mut depth = 0i32;
        let mut j = end - 1;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || !toks[j - 1].is_punct('#') {
            return false;
        }
        if toks[j..end].iter().any(|t| t.is_ident(ident)) {
            return true;
        }
        end = j - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        run_all(path, src, &lex(src))
    }

    #[test]
    fn as_cast_and_float_only_fire_in_exact_scope() {
        let src = "pub fn f(x: usize) -> i64 { let y: f64 = 0.0; x as i64 }";
        let in_scope = findings_for("crates/core/src/geometry/grid.rs", src);
        assert!(in_scope.iter().any(|f| f.rule == "no-as-cast"));
        assert!(in_scope.iter().any(|f| f.rule == "no-float"));
        let out_of_scope = findings_for("crates/core/src/analysis.rs", src);
        assert!(out_of_scope
            .iter()
            .all(|f| f.rule != "no-as-cast" && f.rule != "no-float"));
    }

    #[test]
    fn float_literals_fire_but_integer_lookalikes_do_not() {
        let floats = "let a = 0.5; let b = 1_f32; let c = 2.0_f64; let d = 1e3;";
        let f = findings_for("crates/core/src/geometry/grid.rs", floats);
        assert_eq!(f.iter().filter(|f| f.rule == "no-float").count(), 4);

        let ints = "let r = 0..5; let h = 0x1f32; let n = 1usize; let t = pair.0;";
        let f = findings_for("crates/core/src/geometry/grid.rs", ints);
        assert!(f.iter().all(|f| f.rule != "no-float"));
    }

    #[test]
    fn as_f64_reports_once_not_twice() {
        let f = findings_for("crates/core/src/diagram/merge.rs", "let x = n as f64;");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-as-cast");
    }

    #[test]
    fn per_cell_alloc_fires_only_in_arena_scope() {
        let nested = "pub struct D { polyominoes: Vec<Vec<CellIndex>> }";
        let f = findings_for("crates/core/src/diagram/polyomino.rs", nested);
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-per-cell-alloc").count(),
            1
        );

        let boxed = "fn f() { let b: Box<[u64]> = block; let r = Rc::new(cells); }";
        let f = findings_for("crates/core/src/result_set.rs", boxed);
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-per-cell-alloc").count(),
            2
        );

        // The flat arena layout itself is the sanctioned shape — single-level
        // vectors of words, cells, and prefix-summed ends never fire.
        let flat = "pub struct A { words: Vec<u64>, cells_flat: Vec<CellIndex>, \
                    ends: Vec<u32>, results: Vec<ResultId> }";
        let f = findings_for("crates/core/src/diagram/merge.rs", flat);
        assert!(f.iter().all(|f| f.rule != "no-per-cell-alloc"));

        // ClipBox is a whole different identifier, not a `Box` hit.
        let decoy = "pub fn clip(b: ClipBox) -> Vec<CellIndex> { vec![] }";
        let f = findings_for("crates/core/src/diagram/cell_diagram.rs", decoy);
        assert!(f.iter().all(|f| f.rule != "no-per-cell-alloc"));

        // boundary.rs returns genuinely jagged outline walks; out of scope.
        let walks = "pub fn boundary_loops() -> Vec<Vec<Point>> { vec![] }";
        let f = findings_for("crates/core/src/diagram/boundary.rs", walks);
        assert!(f.iter().all(|f| f.rule != "no-per-cell-alloc"));

        // Other crates/modules keep their nested vectors (dominance lists,
        // rank buckets); the rule is about the arena modules only.
        let f = findings_for("crates/core/src/skyband.rs", nested);
        assert!(f.iter().all(|f| f.rule != "no-per-cell-alloc"));

        // Test modules are stripped before linting.
        let tests_only =
            "#[cfg(test)]\nmod tests { fn t() { let v: Vec<Vec<u32>> = Vec::new(); } }";
        let f = findings_for("crates/core/src/diagram/merge.rs", tests_only);
        assert!(f.iter().all(|f| f.rule != "no-per-cell-alloc"));
    }

    #[test]
    fn unwrap_panic_and_expect_rules() {
        let src = r#"
pub fn f() {
    a.unwrap();
    b.expect("short");
    c.expect("map key was inserted in the loop above");
    d.expect(&msg);
    panic!("boom");
    assert!(x > 0, "asserts are permitted");
}
"#;
        let f = findings_for("crates/core/src/query.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-unwrap").count(), 1);
        assert_eq!(f.iter().filter(|f| f.rule == "no-panic").count(), 1);
        assert_eq!(f.iter().filter(|f| f.rule == "expect-message").count(), 2);
    }

    #[test]
    fn unwrap_in_test_module_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\n";
        assert!(findings_for("crates/core/src/query.rs", src).is_empty());
    }

    #[test]
    fn must_use_type_declaration() {
        let bad = "pub struct CellDiagram { x: u32 }";
        let f = findings_for("crates/core/src/diagram/cell_diagram.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "must-use").count(), 1);

        let good = "#[derive(Clone)]\n#[must_use]\npub struct CellDiagram { x: u32 }";
        let f = findings_for("crates/core/src/diagram/cell_diagram.rs", good);
        assert!(f.iter().all(|f| f.rule != "must-use"));
    }

    #[test]
    fn must_use_attr_on_earlier_item_does_not_leak() {
        let src = "#[must_use]\npub fn other() -> u32 { 0 }\npub struct CellDiagram {}";
        let f = findings_for("crates/core/src/diagram/cell_diagram.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "must-use").count(), 1);
    }

    #[test]
    fn must_use_result_set_fns() {
        let bad = "pub fn quadrant_skyline(q: Point) -> Vec<PointId> { vec![] }";
        let f = findings_for("crates/core/src/query.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "must-use").count(), 1);

        let good = "#[must_use]\npub fn quadrant_skyline(q: Point) -> Vec<PointId> { vec![] }";
        assert!(findings_for("crates/core/src/query.rs", good).is_empty());

        // Nested result sets (layers) also count.
        let nested = "pub fn layers(d: &Dataset) -> Vec<Vec<PointId>> { vec![] }";
        let f = findings_for("crates/core/src/skyline/layers.rs", nested);
        assert_eq!(f.iter().filter(|f| f.rule == "must-use").count(), 1);

        // Private and pub(crate) helpers are exempt.
        let private = "fn helper() -> Vec<PointId> { vec![] }\n\
                       pub(crate) fn h2() -> Vec<PointId> { vec![] }";
        assert!(findings_for("crates/core/src/query.rs", private).is_empty());
    }

    #[test]
    fn lock_primitives_fire_only_on_the_read_path() {
        let qualified = "use std::sync::Mutex;\nfn f() { let m = Mutex::new(0); }";
        let f = findings_for("crates/serve/src/cache.rs", qualified);
        // The `use` line and the constructor call each fire.
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-lock-read-path").count(),
            2
        );

        let rwlock = "fn f() { let l: std::sync::RwLock<u32> = RwLock::new(0); }";
        let f = findings_for("crates/core/src/epoch.rs", rwlock);
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-lock-read-path").count(),
            2
        );

        // The writer side keeps its mutex; other files are out of scope.
        let f = findings_for("crates/serve/src/server.rs", qualified);
        assert!(f.iter().all(|f| f.rule != "no-lock-read-path"));

        // OnceLock is the sanctioned primitive and must not be confused
        // with a lock; test modules are stripped before linting.
        let benign = "use std::sync::OnceLock;\nfn f() { let c = OnceLock::new(); }\n\
                      #[cfg(test)]\nmod tests { use std::sync::Mutex; }";
        let f = findings_for("crates/serve/src/snapshot.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-lock-read-path"));
    }

    #[test]
    fn ad_hoc_timing_fires_in_lib_code_but_not_telemetry_or_benches() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let f = findings_for("crates/serve/src/workload.rs", src);
        // The `use` line and the `Instant::now()` call each fire.
        assert_eq!(f.iter().filter(|f| f.rule == "no-ad-hoc-timing").count(), 2);

        // The telemetry layer owns the clock.
        let exempt = findings_for("crates/core/src/telemetry.rs", src);
        assert!(exempt.iter().all(|f| f.rule != "no-ad-hoc-timing"));

        // Benches and binaries are outside LIB_SCOPE.
        let bench = findings_for("crates/bench/src/lib.rs", src);
        assert!(bench.iter().all(|f| f.rule != "no-ad-hoc-timing"));

        // Test modules are stripped before linting.
        let tests_only = "#[cfg(test)]\nmod tests { use std::time::Instant; }";
        let f = findings_for("crates/core/src/global.rs", tests_only);
        assert!(f.iter().all(|f| f.rule != "no-ad-hoc-timing"));
    }

    #[test]
    fn ad_hoc_timing_fires_inside_serve_test_bodies() {
        // The serve differential suites lint their `#[test]` functions
        // too: an ad-hoc clock there measures against the wrong epoch.
        let src = "#[test]\nfn t() { let t0 = std::time::Instant::now(); }";
        let f = findings_for("crates/serve/tests/coordinated_omission.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-ad-hoc-timing").count(), 1);

        // Other crates' integration tests keep their freedom.
        let f = findings_for("crates/core/tests/parallel_matrix.rs", src);
        assert!(f.iter().all(|f| f.rule != "no-ad-hoc-timing"));

        // The sanctioned clock helpers do not trip the rule.
        let benign = "#[test]\nfn t() {\n    let t0 = skyline_core::telemetry::now_ns();\n    \
                      skyline_core::telemetry::spin_until(t0 + 5);\n}";
        let f = findings_for("crates/serve/tests/stress_diff.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-ad-hoc-timing"));
    }

    #[test]
    fn raw_atomic_fires_outside_the_sync_facade() {
        let path_form = "use std::sync::atomic::{AtomicU64, Ordering};";
        let f = findings_for("crates/core/src/epoch.rs", path_form);
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-atomic").count(), 1);

        let oncelock =
            "fn f() { static C: std::sync::OnceLock<u32> = std::sync::OnceLock::new(); }";
        let f = findings_for("crates/core/src/telemetry.rs", oncelock);
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-atomic").count(), 2);

        let grouped = "use std::sync::{Arc, OnceLock, atomic};";
        let f = findings_for("crates/serve/src/cache.rs", grouped);
        // OnceLock and atomic each fire; Arc is fine.
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-atomic").count(), 2);

        // The facade itself is the one legal home for raw paths.
        let exempt = findings_for("crates/core/src/sync/mod.rs", path_form);
        assert!(exempt.iter().all(|f| f.rule != "no-raw-atomic"));
        let sched = findings_for("crates/core/src/sync/sched.rs", path_form);
        assert!(sched.iter().all(|f| f.rule != "no-raw-atomic"));

        // The facade's own names, imported through it, are sanctioned.
        let benign = "use crate::sync::{AtomicU64, OnceLock, Ordering};\n\
                      use skyline_core::sync::Arc;\nuse std::sync::Mutex;";
        let f = findings_for("crates/core/src/parallel.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-raw-atomic"));

        // Test modules keep their raw atomics (drop probes and the like).
        let tests_only = "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicUsize; }";
        let f = findings_for("crates/core/src/epoch.rs", tests_only);
        assert!(f.iter().all(|f| f.rule != "no-raw-atomic"));
    }

    #[test]
    fn raw_alloc_count_fires_outside_the_counting_allocator() {
        let use_form = "use std::alloc::{GlobalAlloc, Layout, System};";
        let f = findings_for("crates/core/src/result_set.rs", use_form);
        // `std::alloc` fires once; the `GlobalAlloc` ident fires once more.
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-raw-alloc-count").count(),
            2
        );

        let call_form = "fn f() { let p = unsafe { std::alloc::alloc(layout) }; }";
        let f = findings_for("crates/serve/src/snapshot.rs", call_form);
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-raw-alloc-count").count(),
            1
        );

        let impl_form = "unsafe impl GlobalAlloc for Mine {}";
        let f = findings_for("crates/core/src/epoch.rs", impl_form);
        assert_eq!(
            f.iter().filter(|f| f.rule == "no-raw-alloc-count").count(),
            1
        );

        // The counting allocator itself is the one legal home — for raw
        // alloc paths AND (like the sync facade) for raw atomics.
        let hook = "use std::alloc::{GlobalAlloc, Layout, System};\n\
                    use std::sync::atomic::{AtomicU64, Ordering};";
        let exempt = findings_for("crates/core/src/telemetry/mem.rs", hook);
        assert!(exempt.iter().all(|f| f.rule != "no-raw-alloc-count"));
        assert!(exempt.iter().all(|f| f.rule != "no-raw-atomic"));

        // Decoys: a local module named `alloc`, the word in a string, and
        // vec allocation APIs must not trip the rule.
        let benign = "mod alloc {}\nfn f() { let v: Vec<u8> = Vec::with_capacity(8); \
                      let s = \"std::alloc\"; my::alloc::grab(); }";
        let f = findings_for("crates/core/src/result_set.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-raw-alloc-count"));

        // Benches, binaries, and test modules are out of scope.
        let bench = findings_for("crates/bench/src/lib.rs", use_form);
        assert!(bench.iter().all(|f| f.rule != "no-raw-alloc-count"));
        let tests_only = "#[cfg(test)]\nmod tests { use std::alloc::System; }";
        let f = findings_for("crates/core/src/global.rs", tests_only);
        assert!(f.iter().all(|f| f.rule != "no-raw-alloc-count"));
    }

    #[test]
    fn relaxed_needs_justification_and_seqcst_is_banned() {
        let bare = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let f = findings_for("crates/core/src/telemetry.rs", bare);
        assert_eq!(f.iter().filter(|f| f.rule == "atomic-ordering").count(), 1);

        let same_line = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: pure counter\n}";
        let f = findings_for("crates/core/src/telemetry.rs", same_line);
        assert!(f.iter().all(|f| f.rule != "atomic-ordering"));

        let above = "fn f(c: &AtomicU64) {\n    // relaxed-ok: statistics only; nothing\n    \
                     // orders against this value\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let f = findings_for("crates/core/src/telemetry.rs", above);
        assert!(f.iter().all(|f| f.rule != "atomic-ordering"));

        // A justification does not leak past a non-comment line.
        let stale = "fn f(c: &AtomicU64) {\n    // relaxed-ok: the other one\n    \
                     c.store(0, Ordering::Release);\n    c.fetch_add(1, Ordering::Relaxed);\n}";
        let f = findings_for("crates/core/src/telemetry.rs", stale);
        assert_eq!(f.iter().filter(|f| f.rule == "atomic-ordering").count(), 1);

        let seqcst = "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }";
        let f = findings_for("crates/core/src/epoch.rs", seqcst);
        assert_eq!(f.iter().filter(|f| f.rule == "atomic-ordering").count(), 1);

        // The checker's internal bookkeeping is exempt, as are tests.
        let f = findings_for("crates/core/src/sync/sched.rs", seqcst);
        assert!(f.iter().all(|f| f.rule != "atomic-ordering"));
        let tests_only =
            "#[cfg(test)]\nmod tests { fn t(c: &AtomicU64) { c.load(Ordering::SeqCst); } }";
        let f = findings_for("crates/core/src/epoch.rs", tests_only);
        assert!(f.iter().all(|f| f.rule != "atomic-ordering"));
    }

    #[test]
    fn debug_assert_bodies_must_be_pure() {
        let rmw = "fn f(c: &AtomicU64) { debug_assert!(c.fetch_add(1, Ordering::Acquire) > 0); }";
        let f = findings_for("crates/core/src/query.rs", rmw);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "no-side-effect-debug-assert")
                .count(),
            1
        );

        let eq_form = "fn f(v: &mut Vec<u32>) { debug_assert_eq!(v.pop(), Some(1)); }";
        let f = findings_for("crates/apps/src/reverse.rs", eq_form);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "no-side-effect-debug-assert")
                .count(),
            1
        );

        // Pure reads are fine, and mutations *outside* the macro are out of
        // this rule's scope (field access without a call is fine too).
        let benign = "fn f(v: &Vec<u32>, c: &AtomicU64) {\n    v.pop_hint();\n    \
                      debug_assert!(v.len() > 0 && c.load(Ordering::Acquire) > 0);\n    \
                      debug_assert!(self.set_point.is_some());\n}";
        let f = findings_for("crates/core/src/query.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-side-effect-debug-assert"));
    }

    #[test]
    fn raw_spawn_fires_everywhere_except_the_parallel_layer() {
        let qualified = "fn f() { std::thread::spawn(|| {}); }";
        let f = findings_for("crates/bench/src/bin/experiments.rs", qualified);
        // One finding for the std::thread prefix — not a second for spawn.
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-spawn").count(), 1);

        let imported = "use std::thread;\nfn f() { thread::scope(|s| {}); }";
        let f = findings_for("crates/apps/src/reverse.rs", imported);
        // The `use std::thread` line and the `thread::scope` call each fire.
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-spawn").count(), 2);

        let builder = "fn f() { thread::Builder::new(); }";
        let f = findings_for("crates/core/src/global.rs", builder);
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-spawn").count(), 1);

        let exempt = findings_for("crates/core/src/parallel.rs", qualified);
        assert!(exempt.iter().all(|f| f.rule != "no-raw-spawn"));

        // Unrelated identifiers sharing the name don't fire.
        let benign = "fn f() { pool.scope(|s| {}); my_thread.join(); }";
        let f = findings_for("crates/core/src/global.rs", benign);
        assert!(f.iter().all(|f| f.rule != "no-raw-spawn"));
    }
}
