//! Renders a gallery of SVG figures into `target/gallery/`: the quadrant
//! diagram with polyomino boundaries (paper Figure 3/8), the dynamic
//! subcell diagram (Figure 9), and one diagram per data distribution.
//!
//! ```text
//! cargo run -p skyline-examples --bin diagram_gallery
//! ```

use skyline_core::diagram::merge::merge;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{hotel, DatasetSpec, Distribution};
use skyline_viz::svg::{render_merged_diagram, render_subcell_diagram, SvgOptions};

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("target/gallery");
    std::fs::create_dir_all(out_dir)?;
    let options = SvgOptions::default();

    // The paper's running example, with polyomino boundaries.
    let hotels = hotel::dataset();
    let quadrant = QuadrantEngine::Sweeping.build(&hotels);
    let merged = merge(&quadrant);
    std::fs::write(
        out_dir.join("hotel_quadrant.svg"),
        render_merged_diagram(&hotels, &quadrant, &merged, &options),
    )?;
    println!(
        "hotel_quadrant.svg: {} cells in {} polyominoes",
        quadrant.grid().cell_count(),
        merged.len()
    );

    // Its dynamic counterpart (subcell granularity).
    let dynamic = DynamicEngine::Scanning.build(&hotels);
    std::fs::write(
        out_dir.join("hotel_dynamic.svg"),
        render_subcell_diagram(&hotels, &dynamic, &options),
    )?;
    println!(
        "hotel_dynamic.svg: {} subcells, {} distinct results",
        dynamic.grid().subcell_count(),
        dynamic.distinct_results()
    );

    // The reverse-skyline diagram over the reflection grid (regions where
    // a new competitor would impact the same set of hotels).
    let reverse = skyline_apps::reverse_diagram::ReverseSkylineDiagram::build(&hotels);
    std::fs::write(
        out_dir.join("hotel_reverse.svg"),
        skyline_viz::svg::render_result_grid(
            reverse.x_lines(),
            reverse.y_lines(),
            1.0,
            |i, j| reverse.result_id(i, j),
            reverse.empty_result(),
            Some(&hotels),
            &options,
        ),
    )?;
    println!(
        "hotel_reverse.svg: {} cells, {} distinct reverse skylines",
        reverse.cell_count(),
        reverse.distinct_results()
    );

    // One quadrant diagram per benchmark distribution.
    for dist in Distribution::ALL {
        let ds = DatasetSpec {
            n: 30,
            dims: 2,
            domain: 100,
            distribution: dist,
            seed: 5,
        }
        .build_2d();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let m = merge(&d);
        let name = format!("{}_quadrant.svg", dist.name());
        std::fs::write(
            out_dir.join(&name),
            render_merged_diagram(&ds, &d, &m, &options),
        )?;
        println!(
            "{name}: {} polyominoes over {} cells",
            m.len(),
            d.grid().cell_count()
        );
    }

    println!("\ngallery written to {}", out_dir.display());
    Ok(())
}
