//! High-dimensional diagrams: three-attribute NBA-like data (points,
//! rebounds, assists — inverted for minimization), all five d-dimensional
//! engines, and the future-work sweeping extension in action.
//!
//! ```text
//! cargo run -p skyline-examples --bin highd_demo
//! ```

use skyline_core::geometry::PointD;
use skyline_core::highd::{global, HighDEngine, OrthantGrid};
use skyline_core::query::{global_skyline_d, orthant_skyline_d};
use skyline_data::nba;

fn main() {
    // 25 players, 3 attributes. Hyper-cell counts are O(n^3): keep n small.
    let players = nba::players_d(25, 3, 2024);
    let grid = OrthantGrid::new(&players);
    println!(
        "25 players, 3 attributes -> {} hyper-cells ({}x{}x{} slabs)",
        grid.cell_count(),
        grid.widths()[0],
        grid.widths()[1],
        grid.widths()[2],
    );

    // All engines agree; time them informally.
    let reference = HighDEngine::Baseline.build(&players);
    for engine in HighDEngine::ALL {
        let start = std::time::Instant::now();
        let d = engine.build(&players);
        let elapsed = start.elapsed();
        assert!(d.same_results(&reference), "{} disagrees", engine.name());
        println!(
            "  {:<12} {:>10.2?}  (identical output)",
            engine.name(),
            elapsed
        );
    }

    // Query: who is undominated among players strictly worse than a
    // mid-tier profile in every (inverted) stat? Pick each component just
    // off the data's own values, so the query lies strictly inside a
    // hyper-cell and global lookups are exact (see skyline_core::query on
    // the on-hyperplane convention).
    let q = PointD::new(
        (0..3)
            .map(|k| {
                let target = grid.lines(k)[grid.lines(k).len() / 2];
                (target..)
                    .find(|v| grid.lines(k).binary_search(v).is_err())
                    .expect("gap")
            })
            .collect(),
    );
    let sky = reference.query(&q);
    println!("\northant skyline beyond {q}: {} players", sky.len());
    assert_eq!(sky, orthant_skyline_d(&players, &q).as_slice());

    // Global: competitors in every orthant around the profile.
    let g = global::build(&players, HighDEngine::Sweeping);
    let global_sky = g.query(&q);
    println!("global skyline around {q}: {} players", global_sky.len());
    assert_eq!(global_sky, global_skyline_d(&players, &q).as_slice());
    assert!(sky.iter().all(|id| global_sky.contains(id)));

    // Diagram size story in 3-d.
    let distinct: std::collections::HashSet<Vec<_>> = (0..grid.cell_count())
        .map(|idx| reference.result(&grid.cell_from_linear(idx)).to_vec())
        .collect();
    println!(
        "\ndistinct results: {} over {} cells ({:.1}% compression by interning)",
        distinct.len(),
        grid.cell_count(),
        100.0 * (1.0 - distinct.len() as f64 / grid.cell_count() as f64),
    );
}
