//! The paper's running example, end to end: eleven hotels with (distance to
//! downtown, price), the query hotel q = (10, 80), and all three skyline
//! query semantics — quadrant, global, dynamic — answered both from scratch
//! and via precomputed diagrams, with an ASCII picture of the diagram.
//!
//! ```text
//! cargo run -p skyline-examples --bin hotel_finder
//! ```

use skyline_core::dynamic::DynamicEngine;
use skyline_core::global;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query;
use skyline_data::hotel;
use skyline_viz::ascii;

fn names(ids: &[skyline_core::geometry::PointId]) -> Vec<String> {
    ids.iter().map(|id| format!("p{}", id.0 + 1)).collect()
}

fn main() {
    let hotels = hotel::dataset();
    let q = hotel::QUERY;

    println!("hotel dataset (distance to downtown, price):");
    for (i, &(d, p)) in hotel::HOTELS.iter().enumerate() {
        println!("  p{:<2} dist={:<2} price={}", i + 1, d, p);
    }
    println!("\nquery hotel q = {q}\n");

    // --- From-scratch queries (Figure 1 of the paper) ---
    println!(
        "quadrant skyline (competitors farther AND pricier): {:?}",
        names(&query::quadrant_skyline(&hotels, q))
    );
    println!(
        "global skyline (competitors per quadrant):          {:?}",
        names(&query::global_skyline(&hotels, q))
    );
    println!(
        "dynamic skyline (|attribute difference| dominance):  {:?}",
        names(&query::dynamic_skyline(&hotels, q))
    );

    // --- Precomputed diagrams ---
    let quadrant = QuadrantEngine::Sweeping.build(&hotels);
    let global = global::build(&hotels, QuadrantEngine::Sweeping);
    let dynamic = DynamicEngine::Scanning.build(&hotels);

    println!(
        "\nquadrant diagram: {} cells, {} distinct results",
        quadrant.grid().cell_count(),
        quadrant.stats().distinct_results
    );
    println!(
        "global diagram:   {} cells, {} distinct results",
        global.grid().cell_count(),
        global.stats().distinct_results
    );
    println!(
        "dynamic diagram:  {} subcells, {} distinct results",
        dynamic.grid().subcell_count(),
        dynamic.distinct_results()
    );

    // Diagram lookups agree with from-scratch computation for interior
    // queries (q itself sits on bisector lines; see crate docs on the
    // boundary convention).
    let q_interior = skyline_core::geometry::Point::new(14, 81);
    assert_eq!(
        quadrant.query(q_interior),
        query::quadrant_skyline(&hotels, q_interior).as_slice()
    );
    assert_eq!(
        global.query(q_interior),
        query::global_skyline(&hotels, q_interior).as_slice()
    );
    println!(
        "\nlookup at {q_interior}: quadrant = {:?}",
        names(quadrant.query(q_interior))
    );

    // --- Picture ---
    println!("\nquadrant skyline diagram (one glyph per result; '.' = empty):");
    print!("{}", ascii::render_cells(&quadrant));
    println!("legend:\n{}", ascii::legend(&quadrant));
}
