//! The facade + persistence workflow: build a [`SkylineIndex`], answer all
//! three query semantics, serialize the diagrams to disk, and reload them
//! with full validation — the data-owner side of the outsourcing story.
//!
//! ```text
//! cargo run -p skyline-examples --bin index_and_persistence
//! ```

use skyline_core::geometry::Point;
use skyline_core::index::SkylineIndex;
use skyline_core::serialize;
use skyline_data::{DatasetSpec, Distribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetSpec {
        n: 80,
        dims: 2,
        domain: 500,
        distribution: Distribution::Anticorrelated,
        seed: 2024,
    }
    .build_2d();

    // One call builds quadrant + global + dynamic diagrams and the
    // polyomino partition.
    let index = SkylineIndex::builder()
        .with_global(true)
        .with_dynamic(true)
        .build(&dataset);

    let q = Point::new(137, 222);
    println!("quadrant skyline at {q}: {:?}", index.quadrant(q));
    println!("global skyline at {q}:   {:?}", index.global(q));
    println!("dynamic skyline at {q}:  {:?}", index.dynamic(q));
    let zone = index.safe_zone(q);
    println!(
        "safe zone: {} cells, bbox {:?} — move anywhere inside without the result changing",
        zone.area(),
        zone.bounding_box()
    );

    // Persist the diagrams. The format is versioned and checksummed: any
    // corruption fails decoding instead of producing wrong answers.
    let dir = std::path::Path::new("target/persistence-demo");
    std::fs::create_dir_all(dir)?;

    let quadrant_bytes = serialize::encode_cell_diagram(index.quadrant_diagram());
    let global_bytes = serialize::encode_cell_diagram(index.global_diagram().expect("built above"));
    let dynamic_bytes =
        serialize::encode_subcell_diagram(index.dynamic_diagram().expect("built above"));
    std::fs::write(dir.join("quadrant.skyd"), &quadrant_bytes)?;
    std::fs::write(dir.join("global.skyd"), &global_bytes)?;
    std::fs::write(dir.join("dynamic.skyd"), &dynamic_bytes)?;
    println!(
        "\npersisted: quadrant {} B, global {} B, dynamic {} B",
        quadrant_bytes.len(),
        global_bytes.len(),
        dynamic_bytes.len()
    );

    // Reload and verify answers survive the roundtrip.
    let reloaded = serialize::decode_cell_diagram(&std::fs::read(dir.join("quadrant.skyd"))?)?;
    assert_eq!(reloaded.query(q), index.quadrant(q));
    println!("reloaded quadrant diagram answers identically ✓");

    // Corruption demo: flip one byte, watch decoding refuse.
    let mut bad = quadrant_bytes.clone();
    bad[quadrant_bytes.len() / 2] ^= 0xFF;
    match serialize::decode_cell_diagram(&bad) {
        Err(e) => println!("corrupted copy rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    Ok(())
}
