//! Runnable examples for the skyline-diagram workspace. See the individual
//! binaries: `quickstart`, `hotel_finder`, `moving_query`,
//! `reverse_skyline`, `outsourced_authentication`, `diagram_gallery`,
//! `index_and_persistence`, `market_analysis`, `highd_demo`, `serving`.
//!
//! The module below embeds the tutorial so its code snippets compile and
//! run as doctests.

/// The user tutorial (docs/TUTORIAL.md), doctested.
#[doc = include_str!("../docs/TUTORIAL.md")]
pub mod tutorial {}
