//! Market analysis: where should a new product go?
//!
//! Combines three tools: the **result distribution** (which skylines a
//! random customer sees, weighted by area), the **bichromatic reverse
//! skyline** (which customers a new product would reach), and the
//! **maintained index** (what the market looks like after launching it).
//!
//! ```text
//! cargo run -p skyline-examples --bin market_analysis
//! ```

use skyline_apps::reverse::BichromaticIndex;
use skyline_core::analysis::{containment_probability, result_distribution};
use skyline_core::diagram::ClipBox;
use skyline_core::geometry::Point;
use skyline_core::maintained::MaintainedIndex;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};

fn main() {
    // Products: (price, delivery days) — smaller is better.
    let products = DatasetSpec {
        n: 40,
        dims: 2,
        domain: 100,
        distribution: Distribution::Anticorrelated,
        seed: 7,
    }
    .build_2d();
    // Customers: their "ideal product" positions.
    let customers = DatasetSpec {
        n: 200,
        dims: 2,
        domain: 100,
        distribution: Distribution::Independent,
        seed: 8,
    }
    .build_2d();

    let diagram = QuadrantEngine::Sweeping.build(&products);
    let window = ClipBox {
        x_min: 0,
        x_max: 100,
        y_min: 0,
        y_max: 100,
    };

    // 1. Which results does a uniformly random customer see?
    let distribution = result_distribution(&diagram, window);
    println!("top skyline results by query-area share:");
    let total = 100.0 * 100.0;
    for share in distribution.iter().take(5) {
        println!(
            "  {:5.1}%  {:?}",
            100.0 * share.area as f64 / total,
            share.ids
        );
    }

    // 2. Which product is most visible to random customers?
    let (best, prob) = products
        .ids()
        .map(|id| (id, containment_probability(&diagram, window, id)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty catalog");
    println!(
        "\nmost visible product: {best} at {} (in the skyline for {:.1}% of query space)",
        products.point(best),
        100.0 * prob
    );

    // 3. Scan candidate launch positions by customer reach.
    let reach = BichromaticIndex::new(&products, &customers);
    let mut best_spot = (Point::new(0, 0), 0usize);
    for x in (5..100).step_by(10) {
        for y in (5..100).step_by(10) {
            let q = Point::new(x, y);
            let count = reach.query(q).len();
            if count > best_spot.1 {
                best_spot = (q, count);
            }
        }
    }
    println!(
        "best sampled launch position: {} reaching {} of {} customers",
        best_spot.0,
        best_spot.1,
        reach.len()
    );

    // 4. Launch it and watch the market shift, without a manual rebuild.
    let mut market = MaintainedIndex::new(QuadrantEngine::Sweeping);
    let handles: Vec<_> = products
        .points()
        .iter()
        .map(|&p| market.insert(p))
        .collect();
    let before = market.query(Point::new(0, 0)).len();
    let launched = market.insert(best_spot.0);
    let after = market.query(Point::new(0, 0));
    println!(
        "\nskyline size from the origin: {before} -> {} after launch{}",
        after.len(),
        if after.contains(&launched) {
            " (the new product is in it)"
        } else {
            ""
        },
    );
    let _ = handles;
}
