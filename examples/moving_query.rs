//! Continuous skyline for a moving query — the safe-zone application.
//!
//! A commuter drives across town; their "similar hotels" skyline changes
//! only when they cross a skyline-diagram boundary. This example traces a
//! route through the hotel dataset, prints the full itinerary of result
//! changes, and shows the safe zone around the starting position.
//!
//! ```text
//! cargo run -p skyline-examples --bin moving_query
//! ```

use skyline_apps::continuous::{safe_zone, trace_segment, trace_segment_dynamic};
use skyline_core::diagram::merge::merge;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::Point;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::hotel;

fn names(ids: &[skyline_core::geometry::PointId]) -> String {
    let v: Vec<String> = ids.iter().map(|id| format!("p{}", id.0 + 1)).collect();
    format!("{{{}}}", v.join(", "))
}

fn main() {
    let hotels = hotel::dataset();
    let diagram = QuadrantEngine::Sweeping.build(&hotels);
    let merged = merge(&diagram);

    let (start, end) = (Point::new(0, 95), Point::new(22, 10));
    println!("route: {start} -> {end}\n");

    println!("quadrant-skyline itinerary (result per route fraction):");
    for step in trace_segment(&diagram, start, end) {
        println!(
            "  t in [{:.3}, {:.3}]  skyline = {}",
            step.t_start,
            step.t_end,
            names(&step.result)
        );
    }

    // Safe zone at the start: the commuter can move anywhere inside this
    // polyomino without the result changing.
    let zone = safe_zone(&diagram, &merged, start);
    println!(
        "\nsafe zone at {start}: {} cells, bbox {:?}, result {}",
        zone.area(),
        zone.bounding_box(),
        names(diagram.results().get(zone.result)),
    );

    // The dynamic-skyline itinerary changes far more often: bisector lines
    // are crossed between every pair of hotels.
    let dynamic = DynamicEngine::Scanning.build(&hotels);
    let steps = trace_segment_dynamic(&dynamic, start, end);
    println!(
        "\ndynamic-skyline itinerary: {} steps (first 8 shown):",
        steps.len()
    );
    for step in steps.iter().take(8) {
        println!(
            "  t in [{:.3}, {:.3}]  skyline = {}",
            step.t_start,
            step.t_end,
            names(&step.result)
        );
    }
}
