//! Authenticated outsourcing + private retrieval: the data owner publishes
//! a Merkle root over the skyline diagram; an untrusted server answers
//! queries with proofs; and a privacy-conscious client retrieves cells via
//! two-server XOR-PIR without revealing its location.
//!
//! ```text
//! cargo run -p skyline-examples --bin outsourced_authentication
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use skyline_apps::auth::{verify, AuthenticatedDiagram};
use skyline_apps::pir::{private_skyline_query, PirServer};
use skyline_core::geometry::Point;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};

fn main() {
    // The data owner's catalog.
    let dataset = DatasetSpec {
        n: 150,
        dims: 2,
        domain: 1000,
        distribution: Distribution::Independent,
        seed: 99,
    }
    .build_2d();
    let diagram = QuadrantEngine::Sweeping.build(&dataset);

    // --- Authentication ---
    let auth = AuthenticatedDiagram::new(&dataset, diagram.clone());
    let root = auth.root();
    println!(
        "owner published Merkle root {} over {} cells",
        root.iter()
            .take(8)
            .map(|b| format!("{b:02x}"))
            .collect::<String>(),
        auth.leaf_count(),
    );

    let q = Point::new(137, 422);
    let answer = auth.query(&dataset, q);
    println!(
        "server answer at {q}: {} skyline points, proof of {} hashes",
        answer.result.len(),
        answer.path.len(),
    );
    assert!(verify(&answer, &root), "honest server must verify");

    // A malicious server drops the cheapest competitor — detected.
    let mut forged = answer.clone();
    forged.result.pop();
    forged.coordinates.pop();
    assert!(!verify(&forged, &root));
    println!("forged answer (dropped one point): verification FAILED as it should");

    // --- Private retrieval ---
    let server = PirServer::new(&diagram);
    let params = server.client_params(&diagram);
    let (s1, s2) = (server.clone(), server);
    let mut rng = StdRng::seed_from_u64(7);
    let private = private_skyline_query(&s1, &s2, &params, q, &mut rng);
    assert_eq!(private.as_slice(), diagram.query(q));
    println!(
        "PIR retrieval at {q}: {} skyline points, each server saw only a random bit-vector over {} records",
        private.len(),
        params.n_records,
    );
}
