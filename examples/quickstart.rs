//! Quickstart: build a skyline diagram, answer queries, inspect polyominoes.
//!
//! ```text
//! cargo run -p skyline-examples --bin quickstart
//! ```

use skyline_core::diagram::merge::merge;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query::quadrant_skyline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small dataset: anything with two integer attributes where
    //    *smaller is better* in both.
    let dataset =
        Dataset::from_coords([(2, 14), (4, 9), (7, 7), (9, 3), (13, 2), (6, 12), (11, 8)])?;

    // 2. Build the quadrant skyline diagram once — the O(n²) sweeping
    //    engine is the default and fastest choice.
    let diagram = QuadrantEngine::Sweeping.build(&dataset);
    println!(
        "diagram: {} points -> {} cells, {} distinct results",
        dataset.len(),
        diagram.grid().cell_count(),
        diagram.stats().distinct_results,
    );

    // 3. Any skyline query is now an O(log n) lookup.
    let q = Point::new(5, 5);
    let answer = diagram.query(q);
    println!("quadrant skyline at {q}: {answer:?}");

    // 4. The lookup agrees with computing from scratch — just faster.
    assert_eq!(answer, quadrant_skyline(&dataset, q).as_slice());

    // 5. Merge cells into skyline polyominoes (the paper's Voronoi-cell
    //    counterpart): each is a maximal region with one constant result.
    let merged = merge(&diagram);
    println!("{} polyominoes:", merged.len());
    for poly in merged.iter().take(5) {
        println!(
            "  result {:?} covers {} cells, bbox {:?}",
            diagram.results().get(poly.result),
            poly.area(),
            poly.bounding_box(),
        );
    }

    Ok(())
}
