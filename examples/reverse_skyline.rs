//! Reverse skyline: "if a new competitor appears at q, which existing
//! products would see it in their dynamic skyline?" — the market-impact
//! question the reverse-skyline literature asks, answered with the
//! precomputed per-point index.
//!
//! ```text
//! cargo run -p skyline-examples --bin reverse_skyline
//! ```

use skyline_apps::reverse::{reverse_skyline_naive, ReverseSkylineIndex};
use skyline_core::geometry::Point;
use skyline_data::nba;

fn main() {
    // NBA-like products: 120 players over (inverted) points & rebounds.
    let players = nba::players_2d(120, 2024);
    let index = ReverseSkylineIndex::new(&players);

    // A hypothetical new player profile.
    let candidate = Point::new(12, 8);
    let impacted = index.query(candidate);
    println!(
        "a new player at {candidate} would enter the dynamic skyline of {} of {} players",
        impacted.len(),
        index.len(),
    );
    for id in impacted.iter().take(10) {
        let p = players.point(*id);
        println!("  {id} at {p}");
    }

    // The index agrees with the quadratic definition.
    assert_eq!(impacted, reverse_skyline_naive(&players, candidate));

    // Sweep a grid of candidate positions to find the most/least disruptive
    // placement — the kind of batch workload the index is built for.
    let (mut best, mut best_count) = (Point::new(0, 0), 0usize);
    for x in (0..=40).step_by(2) {
        for y in (0..=20).step_by(2) {
            let q = Point::new(x, y);
            let count = index.query(q).len();
            if count > best_count {
                best_count = count;
                best = q;
            }
        }
    }
    println!("\nmost disruptive placement on the sampled grid: {best} (impacts {best_count})");
}
