//! Serving: share one skyline index between writers and lock-free readers.
//!
//! ```text
//! cargo run -p skyline-examples --bin serving
//! ```
//!
//! The serving layer wraps a [`skyline_core::maintained::MaintainedIndex`]
//! in an epoch-swapped snapshot chain: readers pin an immutable snapshot
//! and answer every query without taking a lock, while writers batch
//! updates and publish a new epoch with a single pointer swap. A reader
//! keeps seeing its pinned epoch until it asks for a newer one — queries
//! are repeatable by construction.

use skyline_core::geometry::{Dataset, Point};
use skyline_core::parallel::{self, ParallelConfig};
use skyline_serve::{QueryMix, ServerOptions, SkylineServer, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load a dataset and stand up a server with the global diagram and
    //    the exact per-polyomino result cache enabled.
    let dataset = Dataset::from_coords([(2, 14), (4, 9), (7, 7), (9, 3), (13, 2), (6, 12)])?;
    let options = ServerOptions {
        with_global: true,
        cache_slots: 1024,
        ..ServerOptions::default()
    };
    let (server, handles) = SkylineServer::with_dataset(&dataset, options);
    println!(
        "serving {} points at epoch {}",
        server.len(),
        server.epoch()
    );

    // 2. A reader pins the current snapshot. Every answer below comes from
    //    this immutable epoch — no locks, no torn reads.
    let mut reader = server.reader();
    let snapshot = reader.snapshot();
    let q = Point::new(2, 2);
    println!(
        "epoch {}: quadrant skyline at {q} = {:?}",
        snapshot.epoch(),
        snapshot.quadrant(q)
    );

    // 3. Writers mutate through the server. Updates stay invisible until a
    //    refresh publishes the next epoch.
    let added = server.insert(Point::new(3, 3));
    server.remove(handles[0]);
    assert_eq!(snapshot.quadrant(q), server.latest().quadrant(q));
    let epoch = server.refresh();
    println!("published epoch {epoch} (inserted {added:?}, removed one)");

    // 4. The pinned snapshot still answers from its epoch; hopping to the
    //    new one shows the dominating point (3, 3) take over the answer.
    let before = snapshot.quadrant(q);
    let after = reader.snapshot().quadrant(q);
    println!("before: {before:?}  after: {after:?}");
    assert_ne!(before, after);

    // 5. Readers fan out on the deterministic scoped pool; each worker
    //    pins its own snapshot and the cache serves repeats in O(1).
    let snap = server.latest();
    let answers = parallel::map_indexed(&ParallelConfig::with_threads(4), 64, |i| {
        let p = Point::new((i % 8) as i64 * 2 + 1, (i / 8) as i64 * 2 + 1);
        snap.quadrant(p).len()
    });
    let stats = snap.cache_stats();
    println!(
        "64 parallel queries -> {} results, cache {} hits / {} misses",
        answers.len(),
        stats.hits,
        stats.misses
    );

    // 6. The bundled workload driver measures serving throughput the same
    //    way `skydiag serve-bench` and experiment E12 do.
    let spec = WorkloadSpec {
        readers: 2,
        rounds: 2,
        queries_per_reader: 200,
        updates_per_round: 2,
        domain: 16,
        seed: 7,
        mix: QueryMix::default(),
    };
    let report = skyline_serve::workload::run(&server, &spec, &handles[1..]);
    println!(
        "workload: {} queries in {:.1} ms ({:.0} q/s), {} epochs, checksum {:#018x}",
        report.queries,
        report.elapsed_ms,
        report.queries_per_sec(),
        report.epochs_published,
        report.checksum
    );

    Ok(())
}
