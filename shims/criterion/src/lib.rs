//! Offline stand-in for the subset of the `criterion` 0.5 API used by this
//! workspace's benches: `criterion_group!`/`criterion_main!`, benchmark
//! groups with `sample_size`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and `black_box`.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the real crate is replaced by this path dependency. Measurement is a
//! plain warmup + timed-samples loop reporting min/median/max wall time —
//! enough to compare engines locally; it makes no statistical claims.
//! A `--filter`-style positional argument restricts which benchmarks run,
//! and `--bench`/`--test` flags (passed by cargo) are accepted and ignored;
//! under `--test` each benchmark body runs exactly once.

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                // Harness flags cargo or users may pass; ignored.
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion {
            filter,
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.default_sample_size;
        let id = id.into();
        self.run_one(&id.full, sample_size, Duration::from_secs(1), f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        full_id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if self.test_mode { 1 } else { sample_size },
            measurement_time,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        bencher.report(full_id);
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let time = self.measurement_time;
        self.criterion.run_one(&full, sample_size, time, f);
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; this shim reports
    /// inline, so it is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording wall time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup, and a rough per-iteration estimate for batching.
        let warmup = Instant::now();
        black_box(routine());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample =
            (budget_per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + 2 * self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&mut self, full_id: &str) {
        if self.test_mode {
            println!("{full_id}: ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{full_id}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
            self.samples.len()
        );
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            default_sample_size: 5,
        };
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("plain", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("with_input", 7), &3u32, |b, &x| {
                b.iter(|| black_box(x + 1))
            });
            group.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(ran, 1, "test mode runs each body exactly once");
    }

    #[test]
    fn filters_skip_nonmatching_benchmarks() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            test_mode: true,
            default_sample_size: 5,
        };
        let mut ran = false;
        c.bench_function("something_else", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("only_this_one", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
