//! Offline stand-in for the subset of the `proptest` 1.x API used by this
//! workspace: the `proptest!` macro with `pat in strategy` parameters and a
//! `#![proptest_config(..)]` header, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, integer-range / tuple / array strategies,
//! `prop::collection::vec`, `prop::sample::Index`, `any::<T>()`, `Just`,
//! and `Strategy::prop_map`/`prop_flat_map`.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the real crate is replaced by this path dependency. Differences from
//! upstream, by design:
//!
//! - **No shrinking.** A failing case reports the deterministic case seed;
//!   rerunning the test replays the identical sequence, so failures stay
//!   reproducible even without minimization.
//! - Case counts honor `ProptestConfig::with_cases` and the
//!   `PROPTEST_CASES` environment variable, like upstream.
//! - Generation is a pure function of (test name, case index), so runs are
//!   deterministic across machines.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Upstream couples generation with shrinking via `ValueTree`; here a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Regenerates until `pred` accepts a value (bounded; panics after
        /// too many rejections, mirroring upstream's global rejection cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence)
        }
    }

    /// A strategy that always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.rng, self.clone())
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|i| self[i].generate(rng))
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        fn arbitrary() -> AnyStrategy<Self>;
    }

    /// Marker strategy produced by [`any`]; generation is delegated to
    /// [`SampleAny`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy {
                _marker: core::marker::PhantomData,
            }
        }
    }

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary + SampleAny>() -> AnyStrategy<T> {
        T::arbitrary()
    }

    /// How a type draws its "any" sample.
    pub trait SampleAny {
        /// Draws one unconstrained sample.
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    impl<T: SampleAny> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl SampleAny for $t {
                fn sample_any(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(&mut rng.rng)
                }
            }
            impl Arbitrary for $t {
                fn arbitrary() -> AnyStrategy<Self> {
                    AnyStrategy::default()
                }
            }
        )*};
    }
    arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec()`]: a fixed `usize`, `a..b`, or
    /// `a..=b`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.rng, self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.rng, self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::{AnyStrategy, Arbitrary, SampleAny};
    use crate::test_runner::TestRng;

    /// A deferred collection index: generated without knowing the collection,
    /// resolved against a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        proportion: u64,
    }

    impl Index {
        /// Resolves against a collection of length `len` (uniform over
        /// `0..len`). Panics when `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            // Fixed-point multiply keeps the choice stable as `len` varies.
            ((self.proportion as u128 * len as u128) >> 64) as usize
        }
    }

    impl SampleAny for Index {
        fn sample_any(rng: &mut TestRng) -> Self {
            Index {
                proportion: rand::Rng::gen(&mut rng.rng),
            }
        }
    }

    impl Arbitrary for Index {
        fn arbitrary() -> AnyStrategy<Self> {
            AnyStrategy::default()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies; deterministic per (test, case).
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Builds the RNG for one case from its seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                rng: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }
    }

    /// A failed property within a case body (created by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one `proptest!`-generated test: runs `config.cases` cases
    /// (overridable via `PROPTEST_CASES`), each with a deterministic seed.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        fn cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.config.cases)
        }

        /// Runs every case, panicking (with the case seed) on the first
        /// failure so the harness reports it.
        pub fn run_all<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for i in 0..self.cases() {
                let seed = case_seed(name, i);
                let mut rng = TestRng::from_seed(seed);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {i}/{total} of `{name}` failed (case seed \
                         {seed:#018x}; deterministic, rerun the test to replay): {e}",
                        total = self.cases(),
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {i}/{total} of `{name}` panicked (case seed \
                             {seed:#018x}; deterministic, rerun the test to replay)",
                            total = self.cases(),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// FNV-1a over the test name, mixed with the case index.
    fn case_seed(name: &str, case: u32) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }
}

/// Upstream-style namespace: `prop::collection::vec`, `prop::sample::Index`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_all(stringify!($name), |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// `assert!` that reports through the proptest runner (with the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` (not `let`) so temporaries in the operands live through
        // the comparison, as in `assert_eq!` and upstream proptest.
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), left, right, ::std::format!($($fmt)+)
            ),
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{} != {}`\n  both: {:?}\n {}",
                stringify!($left), stringify!($right), left, ::std::format!($($fmt)+)
            ),
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vecs_and_indexes() {
        let mut rng = crate::test_runner::TestRng::from_seed(99);
        let v = prop::collection::vec((0i64..10, 0i64..10), 1..=5).generate(&mut rng);
        assert!((1..=5).contains(&v.len()));
        assert!(v
            .iter()
            .all(|&(x, y)| (0..10).contains(&x) && (0..10).contains(&y)));

        let rows = prop::collection::vec([0i64..10, 0i64..10, 0i64..10], 3).generate(&mut rng);
        assert_eq!(rows.len(), 3);

        let idx = any::<prop::sample::Index>().generate(&mut rng);
        for len in 1..50usize {
            assert!(idx.index(len) < len);
        }

        let mapped = (0u32..5).prop_map(|v| v * 2).generate(&mut rng);
        assert!(mapped < 10 && mapped % 2 == 0);

        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0i64..50, 0i64..50), n in 1usize..4) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(n.min(3), n);
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case seed")]
    fn failures_report_the_case_seed() {
        // No #[test] attribute: the fn is invoked directly below, and a
        // nested #[test] item would be unnameable to the harness anyway.
        proptest! {
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
