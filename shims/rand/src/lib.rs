//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen_range` (integer ranges) and `gen` (`bool`, `f64`, integers).
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the real crate is replaced by this path dependency (see the
//! `[workspace.dependencies]` table). The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic for a given seed, statistically solid for
//! test-data generation, and **not** a stream-compatible clone of upstream
//! `StdRng` (nothing in the workspace depends on exact streams, only on
//! determinism per seed).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real API.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample from the "standard" distribution of `T`: uniform bits for
    /// integers, `[0, 1)` for `f64`/`f32`, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the standard distribution (see [`Rng::gen`]).
pub trait Standard {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_ints {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Debiased uniform sample from `[0, span)` (Lemire-style rejection).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the sample exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! range_impls {
    // `$u` is the same-width unsigned type: wrapping subtraction in it gives
    // the span without sign extension, and the sample adds back modularly.
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $u as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $u as $t)
            }
        }
    )*};
}
range_impls!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 so any `u64` seed yields a well-mixed
    /// state. Not stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..205);
            assert!((-5..205).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        // Both endpoints of small inclusive ranges are reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(rng.gen_range(-3i64..=3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_and_int_standard_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..1_000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "fair-ish coin, got {heads}");
        let _: u32 = rng.gen();
        let _: i64 = rng.gen();
    }
}
