//! Cross-crate integration tests live in `tests/`; this library only hosts
//! shared helpers for them.

use skyline_data::{DatasetSpec, Distribution};

/// Deterministic dataset grid used across the integration suites: large and
/// small domains (general position vs heavy ties) times the three
/// distributions.
pub fn standard_specs(n: usize) -> Vec<DatasetSpec> {
    let mut specs = Vec::new();
    for distribution in Distribution::ALL {
        for (domain, seed) in [(10_000i64, 1u64), (12, 2)] {
            specs.push(DatasetSpec {
                n,
                dims: 2,
                domain,
                distribution,
                seed,
            });
        }
    }
    specs
}

/// Deterministic query grid covering a dataset's domain with margin.
pub fn query_grid(domain: i64, step: i64) -> Vec<skyline_core::geometry::Point> {
    let mut queries = Vec::new();
    let mut x = -2;
    while x <= domain + 2 {
        let mut y = -2;
        while y <= domain + 2 {
            queries.push(skyline_core::geometry::Point::new(x, y));
            y += step;
        }
        x += step;
    }
    queries
}
