//! End-to-end integration of the application layer against the core
//! diagrams: moving queries, safe zones, authentication, PIR, reverse
//! skylines — on generated benchmark data rather than hand fixtures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_apps::auth::{verify, AuthenticatedDiagram};
use skyline_apps::continuous::{safe_zone, trace_segment, trace_segment_dynamic};
use skyline_apps::pir::{private_skyline_query, PirServer};
use skyline_apps::reverse::{reverse_skyline_naive, ReverseSkylineIndex};
use skyline_core::diagram::merge::merge;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};

fn dataset(n: usize, seed: u64) -> Dataset {
    DatasetSpec {
        n,
        dims: 2,
        domain: 200,
        distribution: Distribution::Independent,
        seed,
    }
    .build_2d()
}

#[test]
fn moving_query_itineraries_tile_and_match() {
    let ds = dataset(50, 1);
    let d = QuadrantEngine::Sweeping.build(&ds);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let a = Point::new(rng.gen_range(-10..210), rng.gen_range(-10..210));
        let b = Point::new(rng.gen_range(-10..210), rng.gen_range(-10..210));
        let steps = trace_segment(&d, a, b);
        assert!((steps[0].t_start - 0.0).abs() < 1e-12);
        assert!((steps.last().unwrap().t_end - 1.0).abs() < 1e-12);
        for w in steps.windows(2) {
            assert!((w[0].t_end - w[1].t_start).abs() < 1e-12);
            assert_ne!(w[0].result, w[1].result);
        }
        // Endpoint results match direct queries, unless the endpoint sits
        // exactly on a grid line: there the point query follows the
        // greater-side convention while the step reports the open interval
        // the path actually traverses.
        let off_lines = |p: Point| {
            d.grid().x_lines().binary_search(&p.x).is_err()
                && d.grid().y_lines().binary_search(&p.y).is_err()
        };
        if off_lines(a) {
            assert_eq!(steps[0].result.as_slice(), d.query(a), "{a} -> {b}");
        }
        if off_lines(b) {
            assert_eq!(
                steps.last().unwrap().result.as_slice(),
                d.query(b),
                "{a} -> {b}"
            );
        }
    }
}

#[test]
fn dynamic_itineraries_have_internally_consistent_steps() {
    let ds = dataset(10, 3);
    let d = DynamicEngine::Scanning.build(&ds);
    let steps = trace_segment_dynamic(&d, Point::new(-5, 100), Point::new(205, 90));
    assert!(steps.len() > 3);
    assert!((steps.last().unwrap().t_end - 1.0).abs() < 1e-12);
    for w in steps.windows(2) {
        assert_ne!(w[0].result, w[1].result);
    }
}

#[test]
fn safe_zones_are_sound_and_maximal() {
    let ds = dataset(40, 4);
    let d = QuadrantEngine::Sweeping.build(&ds);
    let merged = merge(&d);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let q = Point::new(rng.gen_range(-5..205), rng.gen_range(-5..205));
        let zone = safe_zone(&d, &merged, q);
        for &cell in zone.cells {
            assert_eq!(d.result(cell), d.query(q));
        }
        assert!(zone.is_connected());
    }
}

#[test]
fn authentication_end_to_end_on_generated_data() {
    let ds = dataset(60, 6);
    let auth = AuthenticatedDiagram::new(&ds, QuadrantEngine::Sweeping.build(&ds));
    let root = auth.root();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100 {
        let q = Point::new(rng.gen_range(-5..205), rng.gen_range(-5..205));
        let answer = auth.query(&ds, q);
        assert!(verify(&answer, &root), "{q}");
        // Any single-bit change to the path must break verification.
        let mut bad = answer.clone();
        if !bad.path.is_empty() {
            bad.path[0][0] ^= 1;
            assert!(!verify(&bad, &root));
        }
    }
}

#[test]
fn pir_end_to_end_on_generated_data() {
    let ds = dataset(60, 8);
    let d = QuadrantEngine::Sweeping.build(&ds);
    let server = PirServer::new(&d);
    let params = server.client_params(&d);
    let (s1, s2) = (server.clone(), server);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..60 {
        let q = Point::new(rng.gen_range(-5..205), rng.gen_range(-5..205));
        assert_eq!(
            private_skyline_query(&s1, &s2, &params, q, &mut rng).as_slice(),
            d.query(q),
            "{q}"
        );
    }
}

#[test]
fn reverse_skyline_index_on_all_distributions() {
    for distribution in Distribution::ALL {
        let ds = DatasetSpec {
            n: 35,
            dims: 2,
            domain: 60,
            distribution,
            seed: 10,
        }
        .build_2d();
        let index = ReverseSkylineIndex::new(&ds);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let q = Point::new(rng.gen_range(-5..65), rng.gen_range(-5..65));
            assert_eq!(
                index.query(q),
                reverse_skyline_naive(&ds, q),
                "{q} on {}",
                distribution.name()
            );
        }
    }
}

#[test]
fn viz_renders_generated_diagrams() {
    let ds = dataset(25, 12);
    let d = QuadrantEngine::Sweeping.build(&ds);
    let merged = merge(&d);
    let svg = skyline_viz::svg::render_merged_diagram(
        &ds,
        &d,
        &merged,
        &skyline_viz::svg::SvgOptions::default(),
    );
    assert_eq!(svg.matches("<rect").count(), d.grid().cell_count());
    let art = skyline_viz::ascii::render_cells(&d);
    assert_eq!(art.lines().count(), d.grid().ny() as usize + 1);
}
