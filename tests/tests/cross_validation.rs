//! The central reproduction guarantee: every engine family produces
//! identical diagrams, across distributions, domain sizes (general position
//! and heavy ties), and dimensionalities.

use skyline_core::dynamic::DynamicEngine;
use skyline_core::global;
use skyline_core::highd::HighDEngine;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};
use skyline_integration_tests::standard_specs;

#[test]
fn quadrant_engines_agree_everywhere() {
    for spec in standard_specs(60) {
        let ds = spec.build_2d();
        let reference = QuadrantEngine::Baseline.build(&ds);
        for engine in QuadrantEngine::ALL {
            assert!(
                engine.build(&ds).same_results(&reference),
                "{} disagrees on {spec:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn global_diagram_is_engine_independent() {
    for spec in standard_specs(40) {
        let ds = spec.build_2d();
        let reference = global::build(&ds, QuadrantEngine::Baseline);
        for engine in QuadrantEngine::ALL {
            assert!(
                global::build(&ds, engine).same_results(&reference),
                "{} disagrees on {spec:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn dynamic_engines_agree_everywhere() {
    for spec in standard_specs(14) {
        let ds = spec.build_2d();
        let reference = DynamicEngine::Baseline.build(&ds);
        for engine in DynamicEngine::ALL {
            assert!(
                engine.build(&ds).same_results(&reference),
                "{} disagrees on {spec:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn highd_engines_agree_3d_and_4d() {
    for (dims, n) in [(3usize, 14usize), (4, 9)] {
        for distribution in Distribution::ALL {
            for domain in [1000i64, 6] {
                let spec = DatasetSpec {
                    n,
                    dims,
                    domain,
                    distribution,
                    seed: 5,
                };
                let ds = spec.build_d();
                let reference = HighDEngine::Baseline.build(&ds);
                for engine in HighDEngine::ALL {
                    assert!(
                        engine.build(&ds).same_results(&reference),
                        "{} disagrees on {spec:?}",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn highd_at_d2_matches_planar() {
    for spec in standard_specs(30) {
        let ds = spec.build_2d();
        let planar = QuadrantEngine::Scanning.build(&ds);
        let lifted = HighDEngine::Scanning.build(&ds.to_dataset_d());
        for cell in planar.grid().cells() {
            assert_eq!(
                lifted.result(&[cell.0, cell.1]),
                planar.result(cell),
                "cell {cell:?} of {spec:?}"
            );
        }
    }
}

#[test]
fn sweeping_polyominoes_equal_merged_cell_diagrams() {
    use skyline_core::diagram::merge::merge;
    for spec in standard_specs(50) {
        let ds = spec.build_2d();
        let swept = skyline_core::quadrant::sweeping::build(&ds);
        let merged = merge(&QuadrantEngine::Baseline.build(&ds));
        let mut a: Vec<_> = swept.merged.iter().map(|p| p.cells.to_vec()).collect();
        let mut b: Vec<_> = merged.iter().map(|p| p.cells.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "polyomino partitions differ on {spec:?}");
    }
}

#[test]
fn highd_diagram_matches_from_scratch_orthant_queries() {
    use skyline_core::geometry::{DatasetD, PointD};
    let spec = DatasetSpec {
        n: 12,
        dims: 3,
        domain: 30,
        distribution: Distribution::Independent,
        seed: 17,
    };
    let ds = spec.build_d();
    let d = HighDEngine::Sweeping.build(&ds);
    // Doubled representatives land strictly inside every cell; compare
    // against the from-scratch orthant query on a doubled dataset.
    let doubled = DatasetD::new(
        ds.points()
            .iter()
            .map(|p| PointD::new(p.coords().iter().map(|&c| 2 * c).collect()))
            .collect(),
    )
    .unwrap();
    for idx in (0..d.grid().cell_count()).step_by(7) {
        let cell = d.grid().cell_from_linear(idx);
        let rep = d.grid().representative_doubled(&cell);
        assert_eq!(
            d.result(&cell),
            skyline_core::query::orthant_skyline_d(&doubled, &rep).as_slice(),
            "cell {cell:?}"
        );
    }
}

#[test]
fn highd_dynamic_subset_matches_baseline() {
    use skyline_core::dynamic::highd;
    let spec = DatasetSpec {
        n: 5,
        dims: 3,
        domain: 20,
        distribution: Distribution::Anticorrelated,
        seed: 23,
    };
    let ds = spec.build_d();
    assert!(highd::build_subset(&ds).same_results(&highd::build_baseline(&ds)));
}

#[test]
fn nba_standin_is_consistent_across_engines() {
    let ds = skyline_data::nba::players_2d(150, 3);
    let reference = QuadrantEngine::Baseline.build(&ds);
    for engine in QuadrantEngine::ALL {
        assert!(
            engine.build(&ds).same_results(&reference),
            "{}",
            engine.name()
        );
    }
    let small = skyline_data::nba::players_2d(14, 4);
    let dyn_ref = DynamicEngine::Baseline.build(&small);
    for engine in DynamicEngine::ALL {
        assert!(
            engine.build(&small).same_results(&dyn_ref),
            "{}",
            engine.name()
        );
    }
}
