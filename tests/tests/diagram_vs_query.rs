//! Diagram lookups must equal from-scratch query computation for arbitrary
//! query points — the defining property of a skyline diagram (Definition 5).
//!
//! Quadrant/global lookups are exact everywhere (including on grid lines,
//! thanks to the shared greater-side convention). Dynamic lookups are exact
//! off subcell boundaries; the suites below scale coordinates by 4 and use
//! odd query coordinates, which provably never hit a (doubled-coordinate)
//! subcell line.

use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::global;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query;
use skyline_integration_tests::{query_grid, standard_specs};

#[test]
fn quadrant_lookup_equals_from_scratch() {
    for spec in standard_specs(40) {
        let ds = spec.build_2d();
        let d = QuadrantEngine::Sweeping.build(&ds);
        for q in query_grid(spec.domain.min(60), 7) {
            assert_eq!(
                d.query(q),
                query::quadrant_skyline(&ds, q).as_slice(),
                "query {q} on {spec:?}"
            );
        }
    }
}

#[test]
fn global_lookup_equals_from_scratch() {
    // Global lookups are exact off grid lines. Exactly *on* a line the
    // open-quadrant convention excludes axis points from the from-scratch
    // result, while the diagram's greater-side cell sees them in the lower
    // quadrants: there the lookup equals the ε-nudged query, computed
    // exactly in doubled coordinates.
    for spec in standard_specs(35) {
        let ds = spec.build_2d();
        let doubled = Dataset::from_coords(ds.points().iter().map(|p| (2 * p.x, 2 * p.y))).unwrap();
        let d = global::build(&ds, QuadrantEngine::Scanning);
        let grid = d.grid();
        for q in query_grid(spec.domain.min(60), 9) {
            let dx = i64::from(grid.x_lines().binary_search(&q.x).is_ok());
            let dy = i64::from(grid.y_lines().binary_search(&q.y).is_ok());
            let nudged = Point::new(2 * q.x + dx, 2 * q.y + dy);
            assert_eq!(
                d.query(q),
                query::global_skyline(&doubled, nudged).as_slice(),
                "query {q} on {spec:?}"
            );
            if dx == 0 && dy == 0 {
                assert_eq!(
                    d.query(q),
                    query::global_skyline(&ds, q).as_slice(),
                    "off-line query {q} on {spec:?}"
                );
            }
        }
    }
}

#[test]
fn dynamic_lookup_equals_from_scratch_off_boundaries() {
    for spec in standard_specs(12) {
        let base = spec.build_2d();
        // Scale by 4: all subcell lines land on multiples of 4 (in doubled
        // coordinates, multiples of 8); odd query coordinates never touch
        // them.
        let ds = Dataset::from_coords(base.points().iter().map(|p| (4 * p.x, 4 * p.y)))
            .expect("scaling preserves validity");
        let d = DynamicEngine::Scanning.build(&ds);
        let lim = 4 * spec.domain.min(30);
        let mut q = Point::new(-3, -3);
        while q.x < lim {
            q.y = -3;
            while q.y < lim {
                assert_eq!(
                    d.query(q),
                    query::dynamic_skyline(&ds, q).as_slice(),
                    "query {q} on {spec:?}"
                );
                q.y += 26; // stays odd
            }
            q.x += 26;
        }
    }
}

#[test]
fn queries_exactly_on_grid_lines_follow_the_convention() {
    let ds = skyline_data::hotel::dataset();
    let d = QuadrantEngine::Baseline.build(&ds);
    for (_, p) in ds.iter() {
        // Query exactly at each data point: the from-scratch strict
        // quadrant and the greater-side cell must agree.
        assert_eq!(
            d.query(p),
            query::quadrant_skyline(&ds, p).as_slice(),
            "{p}"
        );
    }
}

#[test]
fn dynamic_result_is_subset_of_global_per_subcell() {
    // Paper Section III: dynamic skyline ⊆ global skyline, everywhere.
    let spec = skyline_data::DatasetSpec {
        n: 12,
        dims: 2,
        domain: 40,
        distribution: skyline_data::Distribution::Independent,
        seed: 9,
    };
    let ds = spec.build_2d();
    let dynamic = DynamicEngine::Subset.build(&ds);
    let scaled = Dataset::from_coords(ds.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
    for sc in dynamic.grid().subcells() {
        let sample = dynamic.grid().sample_x4(sc);
        let global = query::global_skyline(&scaled, sample);
        for id in dynamic.result(sc) {
            assert!(global.contains(id), "{id} at subcell {sc:?}");
        }
    }
}
