//! Degenerate and adversarial inputs: exact duplicates, collinear sets,
//! single points, negative coordinates, all-identical datasets.

use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point, PointId};
use skyline_core::global;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query;

fn assert_all_quadrant_engines_agree(ds: &Dataset) {
    let reference = QuadrantEngine::Baseline.build(ds);
    for engine in QuadrantEngine::ALL {
        assert!(
            engine.build(ds).same_results(&reference),
            "{}",
            engine.name()
        );
    }
}

fn assert_all_dynamic_engines_agree(ds: &Dataset) {
    let reference = DynamicEngine::Baseline.build(ds);
    for engine in DynamicEngine::ALL {
        assert!(
            engine.build(ds).same_results(&reference),
            "{}",
            engine.name()
        );
    }
}

#[test]
fn all_points_identical() {
    let ds = Dataset::from_coords(vec![(7, 7); 6]).unwrap();
    assert_all_quadrant_engines_agree(&ds);
    assert_all_dynamic_engines_agree(&ds);
    let d = QuadrantEngine::Sweeping.build(&ds);
    // Below-left of the pile: all six are the skyline (mutually equal).
    assert_eq!(d.query(Point::new(0, 0)).len(), 6);
    assert!(d.query(Point::new(7, 7)).is_empty());
}

#[test]
fn horizontal_and_vertical_collinear() {
    for coords in [
        vec![(0, 5), (2, 5), (4, 5), (6, 5)],
        vec![(5, 0), (5, 2), (5, 4), (5, 6)],
    ] {
        let ds = Dataset::from_coords(coords).unwrap();
        assert_all_quadrant_engines_agree(&ds);
        assert_all_dynamic_engines_agree(&ds);
    }
}

#[test]
fn diagonal_chain_and_antichain() {
    // Chain: each dominates the next; antichain: mutual incomparability.
    let chain = Dataset::from_coords([(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
    let anti = Dataset::from_coords([(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]).unwrap();
    for ds in [&chain, &anti] {
        assert_all_quadrant_engines_agree(ds);
        assert_all_dynamic_engines_agree(ds);
    }
    let d = QuadrantEngine::Scanning.build(&anti);
    // Below-left of the antichain: everything is skyline.
    assert_eq!(d.query(Point::new(-1, -1)).len(), 5);
}

#[test]
fn negative_coordinates() {
    let ds = Dataset::from_coords([(-10, -3), (-5, -8), (0, 4), (3, -1)]).unwrap();
    assert_all_quadrant_engines_agree(&ds);
    assert_all_dynamic_engines_agree(&ds);
    let d = global::build(&ds, QuadrantEngine::Sweeping);
    let q = Point::new(-7, -2);
    assert_eq!(d.query(q), query::global_skyline(&ds, q).as_slice());
}

#[test]
fn single_point() {
    let ds = Dataset::from_coords([(100, 100)]).unwrap();
    assert_all_quadrant_engines_agree(&ds);
    assert_all_dynamic_engines_agree(&ds);
    let d = DynamicEngine::Scanning.build(&ds);
    for sc in d.grid().subcells() {
        assert_eq!(d.result(sc), &[PointId(0)]);
    }
}

#[test]
fn two_point_configurations() {
    // Dominating, anti-dominating, axis-aligned pairs.
    for coords in [
        [(0, 0), (5, 5)],
        [(0, 5), (5, 0)],
        [(0, 0), (0, 5)],
        [(0, 0), (5, 0)],
        [(3, 3), (3, 3)],
    ] {
        let ds = Dataset::from_coords(coords).unwrap();
        assert_all_quadrant_engines_agree(&ds);
        assert_all_dynamic_engines_agree(&ds);
    }
}

#[test]
fn duplicated_clusters_with_spread() {
    let mut coords = Vec::new();
    for _ in 0..3 {
        coords.extend_from_slice(&[(2, 9), (9, 2), (5, 5)]);
    }
    coords.push((0, 11));
    let ds = Dataset::from_coords(coords).unwrap();
    assert_all_quadrant_engines_agree(&ds);
    assert_all_dynamic_engines_agree(&ds);
}

#[test]
fn large_coordinate_magnitudes() {
    // Near the documented bound: bisector arithmetic must stay exact.
    let big = skyline_core::geometry::MAX_COORD / 2;
    let ds = Dataset::from_coords([(big, -big), (-big, big), (big - 7, big - 11)]).unwrap();
    assert_all_quadrant_engines_agree(&ds);
    let d = QuadrantEngine::Sweeping.build(&ds);
    let q = Point::new(0, 0);
    assert_eq!(d.query(q), query::quadrant_skyline(&ds, q).as_slice());
}

#[test]
fn rejects_out_of_range_coordinates() {
    let too_big = skyline_core::geometry::MAX_COORD + 1;
    assert!(Dataset::from_coords([(too_big, 0)]).is_err());
}
