//! The checked-in `datasets/` fixtures stay loadable and semantically
//! stable: regenerating them with the documented seeds must reproduce them
//! byte-for-byte, and the hotel fixture must keep the paper's facts.

use skyline_core::geometry::Point;
use skyline_data::{csv, DatasetSpec, Distribution};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("datasets")
        .join(name);
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

#[test]
fn hotel_fixture_matches_the_library_copy() {
    let ds = csv::parse_dataset_2d(&fixture("hotel.csv")).unwrap();
    assert_eq!(ds, skyline_data::hotel::dataset());
    // And keeps the paper's headline facts.
    assert_eq!(
        skyline_core::query::dynamic_skyline(&ds, Point::new(10, 80)),
        vec![skyline_data::hotel::p(6), skyline_data::hotel::p(11)]
    );
}

#[test]
fn generated_fixtures_are_reproducible() {
    for (name, distribution) in [
        ("correlated_200.csv", Distribution::Correlated),
        ("independent_200.csv", Distribution::Independent),
        ("anticorrelated_200.csv", Distribution::Anticorrelated),
    ] {
        let spec = DatasetSpec {
            n: 200,
            dims: 2,
            domain: 1000,
            distribution,
            seed: 20180417,
        };
        let regenerated = csv::to_csv_2d(&spec.build_2d());
        assert_eq!(fixture(name), regenerated, "{name} drifted from its seed");
    }
}

#[test]
fn fixtures_build_valid_diagrams() {
    let ds = csv::parse_dataset_2d(&fixture("anticorrelated_200.csv")).unwrap();
    let d = skyline_core::quadrant::QuadrantEngine::Sweeping.build(&ds);
    assert!(d.stats().distinct_results > 100);
}
