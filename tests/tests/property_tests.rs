//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use skyline_core::diagram::merge::{merge, merge_flood_fill};
use skyline_core::dominance::{dominates, dominates_dynamic};
use skyline_core::geometry::{Dataset, Point, PointId};
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query;
use skyline_core::skyline::layers::{layer_numbers, layers_2d};
use skyline_core::skyline::sort_sweep::{skyline_2d, skyline_2d_naive};

fn arb_points(max_n: usize, domain: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..domain, 0..domain), 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_a_strict_partial_order(
        a in (0i64..100, 0i64..100),
        b in (0i64..100, 0i64..100),
        c in (0i64..100, 0i64..100),
    ) {
        let (a, b, c) = (Point::new(a.0, a.1), Point::new(b.0, b.1), Point::new(c.0, c.1));
        // Irreflexive.
        prop_assert!(!dominates(a, a));
        // Asymmetric.
        prop_assert!(!(dominates(a, b) && dominates(b, a)));
        // Transitive.
        if dominates(a, b) && dominates(b, c) {
            prop_assert!(dominates(a, c));
        }
    }

    #[test]
    fn dynamic_dominance_is_a_strict_partial_order_for_fixed_q(
        pts in prop::collection::vec((0i64..60, 0i64..60), 3),
        q in (0i64..60, 0i64..60),
    ) {
        let q = Point::new(q.0, q.1);
        let p: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        prop_assert!(!dominates_dynamic(p[0], p[0], q));
        prop_assert!(!(dominates_dynamic(p[0], p[1], q) && dominates_dynamic(p[1], p[0], q)));
        if dominates_dynamic(p[0], p[1], q) && dominates_dynamic(p[1], p[2], q) {
            prop_assert!(dominates_dynamic(p[0], p[2], q));
        }
    }

    #[test]
    fn skyline_is_sound_and_complete(coords in arb_points(60, 40)) {
        let ds = Dataset::from_coords(coords.clone()).unwrap();
        let sky = skyline_2d(&ds);
        let labelled: Vec<(Point, PointId)> =
            ds.iter().map(|(id, p)| (p, id)).collect();
        prop_assert_eq!(sky.clone(), skyline_2d_naive(&labelled));
        // Sound: no skyline point is dominated.
        for &s in &sky {
            prop_assert!(!ds.iter().any(|(_, p)| dominates(p, ds.point(s))));
        }
        // Complete: every non-skyline point is dominated by a skyline point.
        for (id, p) in ds.iter() {
            if sky.binary_search(&id).is_err() {
                prop_assert!(sky.iter().any(|&s| dominates(ds.point(s), p)));
            }
        }
    }

    #[test]
    fn layers_partition_and_respect_dominance(coords in arb_points(50, 30)) {
        let ds = Dataset::from_coords(coords).unwrap();
        let layers = layers_2d(&ds);
        let total: usize = layers.iter().map(Vec::len).sum();
        prop_assert_eq!(total, ds.len());
        let nums = layer_numbers(&layers, ds.len());
        for (a, pa) in ds.iter() {
            for (b, pb) in ds.iter() {
                if dominates(pa, pb) {
                    prop_assert!(nums[a.index()] < nums[b.index()]);
                }
            }
        }
    }

    #[test]
    fn scanning_recurrence_matches_baseline(coords in arb_points(25, 12)) {
        // The clamped Theorem-1 recurrence (including the corner case and
        // the D-range configuration) against the per-cell baseline, on
        // tie-heavy random inputs.
        let ds = Dataset::from_coords(coords).unwrap();
        let scanning = QuadrantEngine::Scanning.build(&ds);
        let baseline = QuadrantEngine::Baseline.build(&ds);
        prop_assert!(scanning.same_results(&baseline));
    }

    #[test]
    fn sweeping_matches_baseline(coords in arb_points(25, 12)) {
        let ds = Dataset::from_coords(coords).unwrap();
        let sweeping = QuadrantEngine::Sweeping.build(&ds);
        let baseline = QuadrantEngine::Baseline.build(&ds);
        prop_assert!(sweeping.same_results(&baseline));
    }

    #[test]
    fn merge_partitions_into_connected_equal_result_regions(coords in arb_points(20, 10)) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let merged = merge(&d);
        // Partition.
        let total: usize = merged.iter().map(|p| p.area()).sum();
        prop_assert_eq!(total, d.grid().cell_count());
        for poly in merged.iter() {
            // Connected, and every member cell shares the result.
            prop_assert!(poly.is_connected());
            for &cell in poly.cells {
                prop_assert_eq!(d.result_id(cell), poly.result);
            }
        }
        // Maximal: two adjacent cells in different polyominoes must differ.
        let width = d.grid().nx() as usize + 1;
        let height = d.grid().ny() as usize + 1;
        for j in 0..height {
            for i in 0..width {
                let idx = j * width + i;
                if i + 1 < width
                    && merged.cell_to_polyomino()[idx] != merged.cell_to_polyomino()[idx + 1]
                {
                    prop_assert_ne!(d.cell_results()[idx], d.cell_results()[idx + 1]);
                }
                if j + 1 < height
                    && merged.cell_to_polyomino()[idx] != merged.cell_to_polyomino()[idx + width]
                {
                    prop_assert_ne!(d.cell_results()[idx], d.cell_results()[idx + width]);
                }
            }
        }
        // Both merge implementations agree.
        let ff = merge_flood_fill(&d);
        prop_assert_eq!(merged, ff);
    }

    #[test]
    fn queries_are_translation_invariant(
        coords in arb_points(25, 20),
        q in (0i64..25, 0i64..25),
        shift in (-50i64..50, -50i64..50),
    ) {
        // Skyline semantics only depend on relative positions: shifting the
        // dataset and the query together must preserve result ids.
        let ds = Dataset::from_coords(coords.clone()).unwrap();
        let shifted = Dataset::from_coords(
            coords.iter().map(|&(x, y)| (x + shift.0, y + shift.1)),
        )
        .unwrap();
        let q0 = Point::new(q.0, q.1);
        let q1 = Point::new(q.0 + shift.0, q.1 + shift.1);
        prop_assert_eq!(
            query::quadrant_skyline(&ds, q0),
            query::quadrant_skyline(&shifted, q1)
        );
        prop_assert_eq!(
            query::global_skyline(&ds, q0),
            query::global_skyline(&shifted, q1)
        );
        prop_assert_eq!(
            query::dynamic_skyline(&ds, q0),
            query::dynamic_skyline(&shifted, q1)
        );
    }

    #[test]
    fn dynamic_scanning_matches_baseline(coords in arb_points(9, 8)) {
        // The V-C candidate-set argument, exercised on tie-heavy inputs.
        let ds = Dataset::from_coords(coords).unwrap();
        let scanning = skyline_core::dynamic::DynamicEngine::Scanning.build(&ds);
        let baseline = skyline_core::dynamic::DynamicEngine::Baseline.build(&ds);
        prop_assert!(scanning.same_results(&baseline));
    }

    #[test]
    fn skyband_engines_agree_and_nest(coords in arb_points(20, 15), k in 1u32..5) {
        let ds = Dataset::from_coords(coords).unwrap();
        let baseline = skyline_core::skyband::build_baseline(&ds, k);
        let incremental = skyline_core::skyband::build_incremental(&ds, k);
        prop_assert!(incremental.same_results(&baseline));
        // k-band contains (k-1)-band everywhere; 1-band is the skyline.
        if k > 1 {
            let smaller = skyline_core::skyband::build_baseline(&ds, k - 1);
            for cell in baseline.grid().cells() {
                let big = baseline.result(cell);
                for id in smaller.result(cell) {
                    prop_assert!(big.contains(id));
                }
            }
        } else {
            prop_assert!(baseline.same_results(&QuadrantEngine::Baseline.build(&ds)));
        }
    }

    #[test]
    fn algorithm4_walks_are_valid_rectilinear_loops(
        perm_seed in 0u64..1000,
        n in 2usize..10,
    ) {
        // General-position input: x strictly increasing, y a permutation.
        let mut ys: Vec<i64> = (0..n as i64).collect();
        let mut state = perm_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            ys.swap(i, j);
        }
        let ds = Dataset::from_coords(
            (0..n).map(|i| (7 * i as i64, 3 * ys[i] + 1)),
        )
        .unwrap();
        let walks = skyline_core::quadrant::algorithm4::build(&ds).unwrap();
        // One walk per (u, p) pair with u.x <= p.x, u.y >= p.y.
        let expected: usize = ds
            .points()
            .iter()
            .map(|p| {
                ds.points().iter().filter(|u| u.x <= p.x && u.y >= p.y).count()
            })
            .sum();
        prop_assert_eq!(walks.len(), expected);
        for w in &walks {
            prop_assert!(w.vertices.len() >= 4);
            prop_assert_eq!(w.vertices[0], w.corner);
            prop_assert!(
                skyline_core::diagram::boundary::signed_area_doubled(&w.vertices) > 0
            );
            for k in 0..w.vertices.len() {
                let a = w.vertices[k];
                let b = w.vertices[(k + 1) % w.vertices.len()];
                prop_assert!((a.x == b.x) ^ (a.y == b.y));
            }
        }
    }

    #[test]
    fn polyomino_count_equals_intersection_count_in_general_position(
        perm_seed in 0u64..1000,
        n in 1usize..12,
    ) {
        // Theorem-2 corollary: in general position the nonempty-result
        // polyominoes are in bijection with the intersection points of the
        // half-open segments — the pairs (u, p) with u.x <= p.x, u.y >= p.y.
        let mut ys: Vec<i64> = (0..n as i64).collect();
        let mut state = perm_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            ys.swap(i, j);
        }
        let ds = Dataset::from_coords((0..n).map(|i| (2 * i as i64, 2 * ys[i]))).unwrap();
        let swept = skyline_core::quadrant::sweeping::build(&ds);
        let nonempty = swept
            .merged
            .iter()
            .filter(|p| !swept.cell_diagram.results().get(p.result).is_empty())
            .count();
        let intersections: usize = ds
            .points()
            .iter()
            .map(|p| ds.points().iter().filter(|u| u.x <= p.x && u.y >= p.y).count())
            .sum();
        prop_assert_eq!(nonempty, intersections);
        // Exactly one empty region (beyond everything), always connected.
        let empties = swept
            .merged
            .iter()
            .filter(|p| swept.cell_diagram.results().get(p.result).is_empty())
            .count();
        prop_assert_eq!(empties, 1);
    }

    #[test]
    fn maintained_index_matches_from_scratch(
        inserts in prop::collection::vec((0i64..30, 0i64..30), 1..20),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
        queries in prop::collection::vec((-3i64..33, -3i64..33), 4),
    ) {
        use skyline_core::maintained::MaintainedIndex;
        let mut index = MaintainedIndex::new(QuadrantEngine::Sweeping);
        index.rebuild_threshold = 4;
        let mut live: Vec<(skyline_core::maintained::Handle, Point)> = inserts
            .iter()
            .map(|&(x, y)| {
                let p = Point::new(x, y);
                (index.insert(p), p)
            })
            .collect();
        for r in removals {
            if live.is_empty() {
                break;
            }
            let (h, _) = live.swap_remove(r.index(live.len()));
            prop_assert!(index.remove(h));
        }
        for (qx, qy) in queries {
            let q = Point::new(qx, qy);
            let got = index.query(q);
            // Oracle over the live set.
            let mut expected: Vec<_> = if live.is_empty() {
                Vec::new()
            } else {
                let mut sorted = live.clone();
                sorted.sort_unstable();
                let ds = Dataset::from_coords(
                    sorted.iter().map(|&(_, p)| (p.x, p.y)),
                )
                .unwrap();
                skyline_core::query::quadrant_skyline(&ds, q)
                    .into_iter()
                    .map(|id| sorted[id.index()].0)
                    .collect()
            };
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "query {}", q);
        }
    }

    #[test]
    fn highd_engines_agree_on_random_3d_inputs(
        rows in prop::collection::vec([0i64..10, 0i64..10, 0i64..10], 1..10),
    ) {
        use skyline_core::geometry::DatasetD;
        use skyline_core::highd::HighDEngine;
        let ds = DatasetD::from_rows(rows).unwrap();
        let reference = HighDEngine::Baseline.build(&ds);
        for engine in HighDEngine::ALL {
            prop_assert!(
                engine.build(&ds).same_results(&reference),
                "{} disagrees",
                engine.name()
            );
        }
    }

    #[test]
    fn highd_diagram_matches_orthant_queries(
        rows in prop::collection::vec([0i64..8, 0i64..8, 0i64..8], 1..7),
    ) {
        use skyline_core::geometry::{DatasetD, PointD};
        use skyline_core::highd::HighDEngine;
        let ds = DatasetD::from_rows(rows).unwrap();
        let d = HighDEngine::Sweeping.build(&ds);
        let doubled = DatasetD::new(
            ds.points()
                .iter()
                .map(|p| PointD::new(p.coords().iter().map(|&c| 2 * c).collect()))
                .collect(),
        )
        .unwrap();
        for idx in 0..d.grid().cell_count() {
            let cell = d.grid().cell_from_linear(idx);
            let rep = d.grid().representative_doubled(&cell);
            prop_assert_eq!(
                d.result(&cell),
                skyline_core::query::orthant_skyline_d(&doubled, &rep).as_slice(),
                "cell {:?}",
                cell
            );
        }
    }

    #[test]
    fn interner_roundtrips_arbitrary_id_sets(ids in prop::collection::vec(0u32..500, 0..40)) {
        let mut interner = skyline_core::result_set::ResultInterner::new();
        let pids: Vec<PointId> = ids.iter().copied().map(PointId).collect();
        let rid = interner.intern_unsorted(pids.clone());
        let mut expected: Vec<PointId> = pids;
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(interner.get(rid), expected.as_slice());
        // Interning again yields the same id.
        prop_assert_eq!(interner.intern_sorted(expected), rid);
    }
}
