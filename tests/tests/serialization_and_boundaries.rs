//! Integration + property tests for the serialization format, the boundary
//! tracer, and the index facade — the production-surface features layered
//! on top of the paper's algorithms.

use proptest::prelude::*;
use skyline_core::diagram::boundary::{boundary_loops, signed_area_doubled, ClipBox};
use skyline_core::diagram::merge::merge;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::index::SkylineIndex;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::serialize;
use skyline_data::{DatasetSpec, Distribution};

#[test]
fn serialization_roundtrips_across_distributions() {
    for spec in skyline_integration_tests::standard_specs(50) {
        let ds = spec.build_2d();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let decoded = serialize::decode_cell_diagram(&serialize::encode_cell_diagram(&d)).unwrap();
        assert!(decoded.same_results(&d), "{spec:?}");
    }
}

#[test]
fn dynamic_serialization_roundtrips() {
    let spec = DatasetSpec {
        n: 12,
        dims: 2,
        domain: 50,
        distribution: Distribution::Anticorrelated,
        seed: 4,
    };
    let ds = spec.build_2d();
    let d = DynamicEngine::Scanning.build(&ds);
    let decoded =
        serialize::decode_subcell_diagram(&serialize::encode_subcell_diagram(&d)).unwrap();
    assert!(decoded.same_results(&d));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn serialized_diagrams_survive_roundtrip(
        coords in prop::collection::vec((0i64..40, 0i64..40), 1..25),
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Scanning.build(&ds);
        let bytes = serialize::encode_cell_diagram(&d);
        let decoded = serialize::decode_cell_diagram(&bytes).unwrap();
        prop_assert!(decoded.same_results(&d));
    }

    #[test]
    fn subcell_bit_flips_never_decode_silently(
        coords in prop::collection::vec((0i64..15, 0i64..15), 1..7),
        flip in any::<prop::sample::Index>(),
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = DynamicEngine::Scanning.build(&ds);
        let mut bytes = serialize::encode_subcell_diagram(&d);
        let idx = flip.index(bytes.len());
        bytes[idx] ^= 0x01;
        if let Ok(decoded) = serialize::decode_subcell_diagram(&bytes) {
            prop_assert!(decoded.same_results(&d), "silent corruption at byte {idx}");
        }
    }

    #[test]
    fn single_bit_flips_never_decode(
        coords in prop::collection::vec((0i64..20, 0i64..20), 1..10),
        flip in any::<prop::sample::Index>(),
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let mut bytes = serialize::encode_cell_diagram(&d);
        let idx = flip.index(bytes.len());
        bytes[idx] ^= 0x01;
        // Either the checksum or a structural validation must reject it;
        // decoding silently to a *different* diagram would be a bug.
        if let Ok(decoded) = serialize::decode_cell_diagram(&bytes) {
            prop_assert!(decoded.same_results(&d), "silent corruption at byte {idx}");
        }
    }

    #[test]
    fn polyomino_boundary_areas_sum_to_the_clip_box(
        coords in prop::collection::vec((0i64..15, 0i64..15), 1..12),
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let merged = merge(&d);
        let grid = d.grid();
        let clip = ClipBox::around(grid);
        let mut total = 0i64;
        for poly in merged.iter() {
            for walk in boundary_loops(grid, poly.cells, clip) {
                total += signed_area_doubled(&walk);
            }
        }
        // The polyominoes tile the clip box exactly.
        let expected = 2 * (clip.x_max - clip.x_min) * (clip.y_max - clip.y_min);
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn index_facade_agrees_with_direct_queries(
        coords in prop::collection::vec((0i64..30, 0i64..30), 1..20),
        queries in prop::collection::vec((-5i64..35, -5i64..35), 8),
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let index = SkylineIndex::new(&ds);
        for (qx, qy) in queries {
            let q = Point::new(qx, qy);
            let expected = skyline_core::query::quadrant_skyline(&ds, q);
            prop_assert_eq!(index.quadrant(q), expected.as_slice());
            let zone = index.safe_zone(q);
            prop_assert!(zone.is_connected());
        }
    }
}

#[test]
fn boundary_loops_of_all_hotel_polyominoes_are_closed_staircases() {
    let ds = skyline_data::hotel::dataset();
    let d = QuadrantEngine::Sweeping.build(&ds);
    let merged = merge(&d);
    let grid = d.grid();
    let clip = ClipBox::around(grid);
    for poly in merged.iter() {
        let loops = boundary_loops(grid, poly.cells, clip);
        assert!(!loops.is_empty());
        for walk in &loops {
            assert!(walk.len() >= 4, "a rectilinear loop needs >= 4 vertices");
            assert_eq!(walk.len() % 2, 0, "rectilinear loops alternate directions");
            // Consecutive vertices share exactly one coordinate.
            for k in 0..walk.len() {
                let a = walk[k];
                let b = walk[(k + 1) % walk.len()];
                assert!((a.x == b.x) ^ (a.y == b.y), "{a} -> {b} not axis-aligned");
            }
        }
    }
}

#[test]
fn highd_sweeping_agrees_on_standard_specs() {
    use skyline_core::highd::HighDEngine;
    for distribution in Distribution::ALL {
        let spec = DatasetSpec {
            n: 12,
            dims: 3,
            domain: 40,
            distribution,
            seed: 8,
        };
        let ds = spec.build_d();
        let reference = HighDEngine::Baseline.build(&ds);
        assert!(
            HighDEngine::Sweeping.build(&ds).same_results(&reference),
            "{}",
            distribution.name()
        );
    }
}
