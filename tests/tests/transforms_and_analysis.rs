//! Integration of the data-preparation and analytics layers with the
//! diagram engines, on generated benchmark data.

use proptest::prelude::*;
use skyline_core::analysis::{containment_probability, result_distribution};
use skyline_core::diagram::ClipBox;
use skyline_core::geometry::transform::{
    invert_axis, normalize_origin, rank_compress, scale, translate, Axis,
};
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};

#[test]
fn transform_pipeline_preserves_diagram_semantics() {
    for distribution in Distribution::ALL {
        let spec = DatasetSpec {
            n: 40,
            dims: 2,
            domain: 5000,
            distribution,
            seed: 13,
        };
        let ds = spec.build_2d();
        // normalize → scale → translate: an affine order-preserving map.
        let prepared =
            translate(&scale(&normalize_origin(&ds).unwrap(), 3).unwrap(), -19, 42).unwrap();
        // Per-cell results must match the original diagram cell-for-cell
        // (grids are isomorphic under order-preserving maps).
        let a = QuadrantEngine::Sweeping.build(&ds);
        let b = QuadrantEngine::Sweeping.build(&prepared);
        assert_eq!(a.grid().nx(), b.grid().nx(), "{}", distribution.name());
        for cell in a.grid().cells() {
            assert_eq!(a.result(cell), b.result(cell), "{cell:?}");
        }
    }
}

#[test]
fn rank_compression_bounds_domains_for_dynamic_diagrams() {
    // Wild coordinates make subcell grids huge; rank compression caps the
    // domain at n while preserving quadrant results exactly.
    let ds = DatasetSpec {
        n: 12,
        dims: 2,
        domain: 1_000_000,
        distribution: Distribution::Independent,
        seed: 4,
    }
    .build_2d();
    let compressed = rank_compress(&ds).unwrap();
    assert!(compressed.points().iter().all(|p| p.x < 12 && p.y < 12));
    let a = QuadrantEngine::Scanning.build(&ds);
    let b = QuadrantEngine::Scanning.build(&compressed);
    for cell in a.grid().cells() {
        assert_eq!(a.result(cell), b.result(cell));
    }
}

#[test]
fn nba_inversion_roundtrip() {
    // The NBA stand-in stores inverted stats; inverting back gives a table
    // where the best raw scorers are *maxima*, i.e. they appear in the
    // skyline of the re-inverted (minimization) copy.
    let players = skyline_data::nba::players_2d(100, 5);
    let reinverted = invert_axis(&invert_axis(&players, Axis::X).unwrap(), Axis::X).unwrap();
    assert_eq!(
        skyline_core::skyline::sort_sweep::skyline_2d(&players),
        skyline_core::skyline::sort_sweep::skyline_2d(&reinverted)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distribution_areas_always_tile_the_window(
        coords in prop::collection::vec((0i64..25, 0i64..25), 1..15),
        pad in 1i64..5,
    ) {
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let window = ClipBox {
            x_min: -pad,
            x_max: 25 + pad,
            y_min: -pad,
            y_max: 25 + pad,
        };
        let dist = result_distribution(&d, window);
        let total: i64 = dist.iter().map(|s| s.area).sum();
        prop_assert_eq!(
            total,
            (window.x_max - window.x_min) * (window.y_max - window.y_min)
        );
        // Each point's containment probability is consistent with the
        // distribution entries containing it.
        for (id, _) in ds.iter().take(3) {
            let p = containment_probability(&d, window, id);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_distribution(
        coords in prop::collection::vec((0i64..12, 0i64..12), 2..8),
    ) {
        // Spot-check the exact areas against brute-force enumeration of
        // every integer query in the window (integer points sample cells
        // unevenly near lines, so enumerate unit boxes instead: each unit
        // box [x, x+1) x [y, y+1) lies inside one cell iff no grid line
        // crosses it — and since all lines are integral, none does).
        let ds = Dataset::from_coords(coords).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let window = ClipBox { x_min: -2, x_max: 14, y_min: -2, y_max: 14 };
        let dist = result_distribution(&d, window);

        let mut counted: std::collections::HashMap<Vec<u32>, i64> =
            std::collections::HashMap::new();
        for x in window.x_min..window.x_max {
            for y in window.y_min..window.y_max {
                // The unit box's interior representative in doubled space.
                let q = Point::new(x, y);
                // cell_of maps on-line queries to the greater side, which
                // is exactly the cell containing (x + ε, y + ε) — the unit
                // box's interior.
                let ids: Vec<u32> = d.query(q).iter().map(|id| id.0).collect();
                *counted.entry(ids).or_default() += 1;
            }
        }
        for share in dist {
            let key: Vec<u32> = share.ids.iter().map(|id| id.0).collect();
            prop_assert_eq!(counted.get(&key).copied().unwrap_or(0), share.area);
        }
    }
}
